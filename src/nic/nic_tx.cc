#include "src/nic/nic_tx.h"

#include <memory>
#include <utility>

#include "src/util/logging.h"

namespace juggler {

void NicTx::SendBurst(const TsoBurst& burst) {
  JUG_CHECK(burst.len > 0 && burst.len <= kMaxTsoPayload);
  ++stats_.bursts;
  const uint64_t tso_id = next_tso_id_++;
  uint32_t sent = 0;
  while (sent < burst.len) {
    const uint32_t chunk = std::min<uint32_t>(kMss, burst.len - sent);
    PacketPtr p = factory_->TryMake();
    if (p == nullptr) {
      // Pool at capacity: this MTU is tail-dropped at the NIC. The rest of
      // the burst still tries — later frames may find the pool recovered,
      // and partial bursts keep the ACK clock alive.
      ++stats_.pool_exhausted_drops;
      sent += chunk;
      continue;
    }
    p->flow = burst.flow;
    p->seq = burst.seq + sent;
    p->payload_len = chunk;
    p->ack_seq = burst.ack_seq;
    p->ack_rwnd = burst.ack_rwnd;
    p->options_token = burst.options_token;
    p->tso_id = tso_id;
    p->sent_time = loop_->now();
    sent += chunk;
    // Flags like PSH apply to the last packet of the burst; ACK to all.
    p->flags = (sent == burst.len) ? burst.flags : static_cast<uint8_t>(burst.flags & kFlagAck);
    p->priority = burst.marker != nullptr && *burst.marker ? (*burst.marker)() : Priority::kLow;
    ++stats_.packets;
    stats_.bytes += chunk;
    Transmit(std::move(p));
  }
}

void NicTx::SendAck(const FiveTuple& flow, Seq seq, Seq ack_seq, uint32_t rwnd,
                    Priority priority, const SackBlocks& sack, bool ece) {
  PacketPtr p = factory_->TryMake();
  if (p == nullptr) {
    // Shed the ACK; cumulative ACKs are self-healing once pressure lifts.
    ++stats_.pool_exhausted_drops;
    return;
  }
  p->flow = flow;
  p->seq = seq;
  p->payload_len = 0;
  p->flags = kFlagAck;
  p->ack_seq = ack_seq;
  p->ack_rwnd = rwnd;
  p->sack = sack;
  p->ece = ece;
  p->priority = priority;
  p->sent_time = loop_->now();
  ++stats_.acks;
  Transmit(std::move(p));
}

void NicTx::Transmit(PacketPtr packet) {
  if (config_.rate_limit_bps <= 0) {
    wire_->Accept(std::move(packet));
    return;
  }
  const TimeNs now = loop_->now();
  const TimeNs release = next_free_ > now ? next_free_ : now;
  next_free_ = release + SerializationTime(packet->wire_bytes(), config_.rate_limit_bps);
  if (release <= now) {
    wire_->Accept(std::move(packet));
    return;
  }
  PacketSink* wire = wire_;
  loop_->ScheduleAt(release,
                    [wire, p = std::move(packet)]() mutable { wire->Accept(std::move(p)); });
}

void PublishNicTxStats(const NicTxStats& stats, const std::string& label,
                       MetricsRegistry* registry) {
  registry->AddCounter("nic_tx.bursts", label, stats.bursts);
  registry->AddCounter("nic_tx.packets", label, stats.packets);
  registry->AddCounter("nic_tx.bytes", label, stats.bytes);
  registry->AddCounter("nic_tx.acks", label, stats.acks);
  registry->AddCounter("nic_tx.pool_exhausted_drops", label, stats.pool_exhausted_drops);
}

}  // namespace juggler
