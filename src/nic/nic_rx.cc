#include "src/nic/nic_rx.h"

#include <utility>

#include "src/util/logging.h"

namespace juggler {

NicRx::NicRx(EventLoop* loop, const CpuCostModel* costs, const NicRxConfig& config,
             const GroFactory& gro_factory, SegmentSink* sink)
    : loop_(loop), costs_(costs), config_(config), sink_(sink) {
  JUG_CHECK(config_.num_queues >= 1);
  for (size_t i = 0; i < config_.num_queues; ++i) {
    auto q = std::make_unique<RxQueue>(this, loop, i);
    q->gro = gro_factory(costs);
    GroEngine::Context ctx;
    ctx.now = loop->now_ptr();
    ctx.host = q.get();
    ctx.recorder = config_.recorder;
    q->gro->set_context(ctx);
    queues_.push_back(std::move(q));
  }
}

void NicRx::RxQueue::GroArmTimer(TimeNs when) {
  EventLoop* loop = nic->loop_;
  loop->Cancel(gro_timer);
  gro_timer = kInvalidTimerId;
  if (when == GroEngine::kNoTimer) {
    return;
  }
  const TimeNs at = when > loop->now() ? when : loop->now();
  gro_timer = loop->ScheduleAt(at, [this] {
    gro_timer = kInvalidTimerId;
    nic->OnGroTimer(this);
  });
}

NicRx::~NicRx() = default;

void NicRx::Accept(PacketPtr packet) {
  ++stats_.packets_in;
  if (packet->corrupted) {
    // Hardware checksum/FCS validation: bad frames never reach the ring.
    ++stats_.checksum_drops;
    return;
  }
  size_t index;
  if (config_.force_queue >= 0) {
    index = static_cast<size_t>(config_.force_queue) % queues_.size();
  } else {
    index = static_cast<size_t>(packet->flow.Hash() >> 17) % queues_.size();
  }
  RxQueue* q = queues_[index].get();
  if (q->ring.size() >= config_.ring_capacity) {
    ++stats_.ring_drops;
    return;
  }
  packet->nic_rx_time = loop_->now();
  q->ring.push_back(std::move(packet));
  if (q->ring.size() > stats_.ring_high_watermark) {
    stats_.ring_high_watermark = q->ring.size();
  }
  ScheduleInterrupt(q);
}

void NicRx::ApplyGroFlowCap(size_t max_flows) {
  for (auto& qp : queues_) {
    RxQueue* q = qp.get();
    q->core.Submit(0, [this, q, max_flows] {
      const TimeNs cost = q->gro->ApplyFlowCapPressure(max_flows);
      q->core.Submit(cost, [this, q] { DeliverPending(q); });
    });
  }
}

void NicRx::ScheduleInterrupt(RxQueue* q) {
  if (q->polling || q->interrupt_pending) {
    return;  // NAPI is (or will be) looking at the ring
  }
  q->interrupt_pending = true;
  const TimeNs earliest = q->last_interrupt + config_.int_coalesce;
  const TimeNs at = earliest > loop_->now() ? earliest : loop_->now();
  ++stats_.coalesce_arms;
  if (config_.recorder != nullptr) {
    config_.recorder->Record(loop_->now(), TraceKind::kNicCoalesceArm, q->index,
                             static_cast<uint64_t>(at - loop_->now()));
  }
  loop_->ScheduleAt(at, [this, q] { FireInterrupt(q); });
}

void NicRx::FireInterrupt(RxQueue* q) {
  ++stats_.interrupts;
  if (config_.recorder != nullptr) {
    config_.recorder->Record(loop_->now(), TraceKind::kNicInterrupt, q->index,
                             q->ring.size());
  }
  q->last_interrupt = loop_->now();
  q->interrupt_pending = false;
  q->polling = true;
  q->session_start = loop_->now();
  StartPoll(q, /*session_entry=*/true);
}

void NicRx::StartPoll(RxQueue* q, bool session_entry) {
  // Zero-cost job: DoPoll runs when the RX core drains its current backlog,
  // so a saturated core naturally delays the poll and lets the ring grow.
  q->core.Submit(0, [this, q, session_entry] { DoPoll(q, session_entry); });
}

void NicRx::DoPoll(RxQueue* q, bool session_entry) {
  ++stats_.polls;
  TimeNs cost = session_entry ? costs_->napi_poll_overhead : costs_->napi_repoll_overhead;
  // One NAPI round: harvest up to `napi_budget` packets off the ring, hand
  // them to the engine as ONE batch (in ring order, so batch processing is
  // observably identical to the old per-packet loop), then the engine's
  // poll-completion hook (GRO flush decisions / timeout checks) — "the
  // kernel hands off packets to GRO, whose batching interval is the same as
  // the driver's polling interval".
  q->batch.clear();
  while (!q->ring.empty() && q->batch.size() < config_.napi_budget) {
    q->batch.push_back(std::move(q->ring.front()));
    q->ring.pop_front();
    cost += costs_->driver_per_packet;
  }
  if (config_.per_packet_dispatch) [[unlikely]] {
    // Reference arm for determinism tests: the batched hand-off below must
    // be observably identical to this packet-by-packet loop.
    for (PacketPtr& p : q->batch) {
      cost += q->gro->Receive(std::move(p));
    }
  } else {
    cost += q->gro->ReceiveBatch(q->batch.data(), q->batch.size());
  }
  if (q->batch.size() == config_.napi_budget && !q->ring.empty()) {
    ++stats_.napi_budget_exhausted;
    if (config_.recorder != nullptr) {
      config_.recorder->Record(loop_->now(), TraceKind::kNapiBudget, q->index,
                               q->ring.size());
    }
  }
  q->batch.clear();
  cost += q->gro->PollComplete();
  q->core.Submit(cost, [this, q] {
    DeliverPending(q);
    const bool time_capped = loop_->now() - q->session_start >= kMaxPollSession;
    if (!q->ring.empty() && !time_capped) {
      // Budget exhausted or more arrived while processing: stay in polling
      // mode (softirq re-poll).
      StartPoll(q, /*session_entry=*/false);
      return;
    }
    EndSession(q);
  });
}

void NicRx::EndSession(RxQueue* q) {
  // napi_complete: leave polling mode and re-enable interrupts. Packets
  // that arrived meanwhile raise a (moderated) interrupt — going straight
  // back into polling here would defeat interrupt coalescing.
  q->polling = false;
  if (!q->ring.empty()) {
    ScheduleInterrupt(q);
  }
}

void NicRx::OnGroTimer(RxQueue* q) {
  q->core.Submit(0, [this, q] {
    const TimeNs cost = q->gro->OnTimer();
    q->core.Submit(cost, [this, q] { DeliverPending(q); });
  });
}

void NicRx::DeliverPending(RxQueue* q) {
  if (q->pending_segments.empty()) {
    return;
  }
  sink_->OnSegmentBatch(q->pending_segments.data(), q->pending_segments.size());
  q->pending_segments.clear();
}

GroStats NicRx::TotalGroStats() const {
  GroStats total;
  for (const auto& q : queues_) {
    const GroStats& s = q->gro->stats();
    total.packets_in += s.packets_in;
    total.acks_in += s.acks_in;
    total.data_packets_in += s.data_packets_in;
    total.ooo_packets += s.ooo_packets;
    total.segments_out += s.segments_out;
    total.data_segments_out += s.data_segments_out;
    total.mtus_out += s.mtus_out;
    total.evictions += s.evictions;
    for (int r = 0; r < static_cast<int>(FlushReason::kReasonCount); ++r) {
      total.flush_by_reason[r] += s.flush_by_reason[r];
    }
  }
  return total;
}

void PublishNicRxStats(const NicRxStats& stats, const std::string& label,
                       MetricsRegistry* registry) {
  registry->AddCounter("nic.packets_in", label, stats.packets_in);
  registry->AddCounter("nic.ring_drops", label, stats.ring_drops);
  registry->AddCounter("nic.checksum_drops", label, stats.checksum_drops);
  registry->AddCounter("nic.interrupts", label, stats.interrupts);
  registry->AddCounter("nic.polls", label, stats.polls);
  registry->AddCounter("nic.coalesce_arms", label, stats.coalesce_arms);
  registry->AddCounter("nic.napi_budget_exhausted", label, stats.napi_budget_exhausted);
  registry->MaxGauge("nic.ring_high_watermark", label, stats.ring_high_watermark);
}

}  // namespace juggler
