// Transmit-side NIC model: TSO segmentation, optional rate limiting, and
// per-packet priority marking.
//
// The transport hands the NIC whole TSO bursts (up to 64KB — the unit
// Presto load-balances, and the unit whose on-wire time sets the
// inseq_timeout rule of thumb in §5.2.1). The NIC cuts a burst into MTU
// packets, stamps each with the burst's tso_id (so per-TSO load balancers
// can keep flowcells together) and asks the optional marker for a priority
// per packet (the probabilistic marking of §2.1).

#ifndef JUGGLER_SRC_NIC_NIC_TX_H_
#define JUGGLER_SRC_NIC_NIC_TX_H_

#include <functional>
#include <string>

#include "src/net/packet_sink.h"
#include "src/obs/metrics.h"
#include "src/sim/event_loop.h"

namespace juggler {

struct TsoBurst {
  FiveTuple flow;
  Seq seq = 0;
  uint32_t len = 0;  // payload bytes, <= kMaxTsoPayload
  uint8_t flags = kFlagAck;
  Seq ack_seq = 0;
  uint32_t ack_rwnd = 0;
  uint32_t options_token = 0;
  // Per-packet priority decision; null means Priority::kLow.
  const std::function<Priority()>* marker = nullptr;
};

struct NicTxConfig {
  // Leaky-bucket cap on this NIC's transmit rate; 0 disables (the wire link
  // still serializes at its own rate).
  int64_t rate_limit_bps = 0;
};

struct NicTxStats {
  uint64_t bursts = 0;
  uint64_t packets = 0;
  uint64_t bytes = 0;
  uint64_t acks = 0;
  // Frames shed because the packet pool was at its capacity cap (overload
  // policy: tail-drop at the NIC with a counter, never abort). TCP's normal
  // loss recovery — dupACKs, RTO — resends the payload once pressure lifts;
  // a dropped pure ACK is recovered by the next cumulative ACK.
  uint64_t pool_exhausted_drops = 0;
};

class NicTx {
 public:
  NicTx(EventLoop* loop, PacketFactory* factory, const NicTxConfig& config, PacketSink* wire)
      : loop_(loop), factory_(factory), config_(config), wire_(wire) {}

  // Segment `burst` into MTU packets and transmit them back-to-back.
  void SendBurst(const TsoBurst& burst);

  // Transmit one pure ACK (with optional SACK blocks and ECN echo).
  void SendAck(const FiveTuple& flow, Seq seq, Seq ack_seq, uint32_t rwnd, Priority priority,
               const SackBlocks& sack = {}, bool ece = false);

  const NicTxStats& stats() const { return stats_; }

  PacketFactory* factory() { return factory_; }

 private:
  void Transmit(PacketPtr packet);

  EventLoop* loop_;
  PacketFactory* factory_;
  NicTxConfig config_;
  PacketSink* wire_;
  TimeNs next_free_ = 0;  // leaky-bucket state
  uint64_t next_tso_id_ = 1;
  NicTxStats stats_;
};

// Snapshot a NicTxStats into `registry` under `label` (e.g. "sender").
void PublishNicTxStats(const NicTxStats& stats, const std::string& label,
                       MetricsRegistry* registry);

}  // namespace juggler

#endif  // JUGGLER_SRC_NIC_NIC_TX_H_
