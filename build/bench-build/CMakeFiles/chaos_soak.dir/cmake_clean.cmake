file(REMOVE_RECURSE
  "../bench/chaos_soak"
  "../bench/chaos_soak.pdb"
  "CMakeFiles/chaos_soak.dir/chaos_soak.cc.o"
  "CMakeFiles/chaos_soak.dir/chaos_soak.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaos_soak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
