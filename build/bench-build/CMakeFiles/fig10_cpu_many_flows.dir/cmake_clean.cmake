file(REMOVE_RECURSE
  "../bench/fig10_cpu_many_flows"
  "../bench/fig10_cpu_many_flows.pdb"
  "CMakeFiles/fig10_cpu_many_flows.dir/fig10_cpu_many_flows.cc.o"
  "CMakeFiles/fig10_cpu_many_flows.dir/fig10_cpu_many_flows.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cpu_many_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
