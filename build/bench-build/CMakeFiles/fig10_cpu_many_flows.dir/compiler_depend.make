# Empty compiler generated dependencies file for fig10_cpu_many_flows.
# This may be replaced when dependencies are built.
