# Empty dependencies file for micro_gro_datapath.
# This may be replaced when dependencies are built.
