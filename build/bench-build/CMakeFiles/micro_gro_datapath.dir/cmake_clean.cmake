file(REMOVE_RECURSE
  "../bench/micro_gro_datapath"
  "../bench/micro_gro_datapath.pdb"
  "CMakeFiles/micro_gro_datapath.dir/micro_gro_datapath.cc.o"
  "CMakeFiles/micro_gro_datapath.dir/micro_gro_datapath.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_gro_datapath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
