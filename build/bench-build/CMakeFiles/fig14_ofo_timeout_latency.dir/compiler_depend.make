# Empty compiler generated dependencies file for fig14_ofo_timeout_latency.
# This may be replaced when dependencies are built.
