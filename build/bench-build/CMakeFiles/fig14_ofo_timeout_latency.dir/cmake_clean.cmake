file(REMOVE_RECURSE
  "../bench/fig14_ofo_timeout_latency"
  "../bench/fig14_ofo_timeout_latency.pdb"
  "CMakeFiles/fig14_ofo_timeout_latency.dir/fig14_ofo_timeout_latency.cc.o"
  "CMakeFiles/fig14_ofo_timeout_latency.dir/fig14_ofo_timeout_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_ofo_timeout_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
