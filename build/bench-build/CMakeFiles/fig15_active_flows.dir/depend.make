# Empty dependencies file for fig15_active_flows.
# This may be replaced when dependencies are built.
