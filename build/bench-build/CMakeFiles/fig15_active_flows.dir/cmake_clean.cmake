file(REMOVE_RECURSE
  "../bench/fig15_active_flows"
  "../bench/fig15_active_flows.pdb"
  "CMakeFiles/fig15_active_flows.dir/fig15_active_flows.cc.o"
  "CMakeFiles/fig15_active_flows.dir/fig15_active_flows.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_active_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
