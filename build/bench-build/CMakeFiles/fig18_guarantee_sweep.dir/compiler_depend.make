# Empty compiler generated dependencies file for fig18_guarantee_sweep.
# This may be replaced when dependencies are built.
