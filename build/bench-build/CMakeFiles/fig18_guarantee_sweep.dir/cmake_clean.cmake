file(REMOVE_RECURSE
  "../bench/fig18_guarantee_sweep"
  "../bench/fig18_guarantee_sweep.pdb"
  "CMakeFiles/fig18_guarantee_sweep.dir/fig18_guarantee_sweep.cc.o"
  "CMakeFiles/fig18_guarantee_sweep.dir/fig18_guarantee_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_guarantee_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
