# Empty dependencies file for fig12_inseq_timeout.
# This may be replaced when dependencies are built.
