file(REMOVE_RECURSE
  "../bench/fig12_inseq_timeout"
  "../bench/fig12_inseq_timeout.pdb"
  "CMakeFiles/fig12_inseq_timeout.dir/fig12_inseq_timeout.cc.o"
  "CMakeFiles/fig12_inseq_timeout.dir/fig12_inseq_timeout.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_inseq_timeout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
