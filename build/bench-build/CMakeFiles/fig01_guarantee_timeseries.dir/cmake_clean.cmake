file(REMOVE_RECURSE
  "../bench/fig01_guarantee_timeseries"
  "../bench/fig01_guarantee_timeseries.pdb"
  "CMakeFiles/fig01_guarantee_timeseries.dir/fig01_guarantee_timeseries.cc.o"
  "CMakeFiles/fig01_guarantee_timeseries.dir/fig01_guarantee_timeseries.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_guarantee_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
