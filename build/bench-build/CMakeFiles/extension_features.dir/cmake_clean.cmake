file(REMOVE_RECURSE
  "../bench/extension_features"
  "../bench/extension_features.pdb"
  "CMakeFiles/extension_features.dir/extension_features.cc.o"
  "CMakeFiles/extension_features.dir/extension_features.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
