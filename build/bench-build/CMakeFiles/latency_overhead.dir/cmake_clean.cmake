file(REMOVE_RECURSE
  "../bench/latency_overhead"
  "../bench/latency_overhead.pdb"
  "CMakeFiles/latency_overhead.dir/latency_overhead.cc.o"
  "CMakeFiles/latency_overhead.dir/latency_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
