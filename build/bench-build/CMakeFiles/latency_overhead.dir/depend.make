# Empty dependencies file for latency_overhead.
# This may be replaced when dependencies are built.
