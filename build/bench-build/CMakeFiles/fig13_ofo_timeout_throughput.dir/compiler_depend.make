# Empty compiler generated dependencies file for fig13_ofo_timeout_throughput.
# This may be replaced when dependencies are built.
