file(REMOVE_RECURSE
  "../bench/fig13_ofo_timeout_throughput"
  "../bench/fig13_ofo_timeout_throughput.pdb"
  "CMakeFiles/fig13_ofo_timeout_throughput.dir/fig13_ofo_timeout_throughput.cc.o"
  "CMakeFiles/fig13_ofo_timeout_throughput.dir/fig13_ofo_timeout_throughput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_ofo_timeout_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
