# Empty compiler generated dependencies file for ablation_buildup_phase.
# This may be replaced when dependencies are built.
