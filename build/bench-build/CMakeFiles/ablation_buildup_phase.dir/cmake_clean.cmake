file(REMOVE_RECURSE
  "../bench/ablation_buildup_phase"
  "../bench/ablation_buildup_phase.pdb"
  "CMakeFiles/ablation_buildup_phase.dir/ablation_buildup_phase.cc.o"
  "CMakeFiles/ablation_buildup_phase.dir/ablation_buildup_phase.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_buildup_phase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
