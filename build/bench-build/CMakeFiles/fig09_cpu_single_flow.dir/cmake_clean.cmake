file(REMOVE_RECURSE
  "../bench/fig09_cpu_single_flow"
  "../bench/fig09_cpu_single_flow.pdb"
  "CMakeFiles/fig09_cpu_single_flow.dir/fig09_cpu_single_flow.cc.o"
  "CMakeFiles/fig09_cpu_single_flow.dir/fig09_cpu_single_flow.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_cpu_single_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
