# Empty compiler generated dependencies file for fig09_cpu_single_flow.
# This may be replaced when dependencies are built.
