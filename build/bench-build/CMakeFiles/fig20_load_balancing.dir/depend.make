# Empty dependencies file for fig20_load_balancing.
# This may be replaced when dependencies are built.
