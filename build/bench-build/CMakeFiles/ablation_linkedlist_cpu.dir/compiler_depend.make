# Empty compiler generated dependencies file for ablation_linkedlist_cpu.
# This may be replaced when dependencies are built.
