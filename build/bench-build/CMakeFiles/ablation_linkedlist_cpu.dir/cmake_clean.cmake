file(REMOVE_RECURSE
  "../bench/ablation_linkedlist_cpu"
  "../bench/ablation_linkedlist_cpu.pdb"
  "CMakeFiles/ablation_linkedlist_cpu.dir/ablation_linkedlist_cpu.cc.o"
  "CMakeFiles/ablation_linkedlist_cpu.dir/ablation_linkedlist_cpu.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_linkedlist_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
