# Empty compiler generated dependencies file for fig16_active_list_realistic.
# This may be replaced when dependencies are built.
