file(REMOVE_RECURSE
  "../bench/fig16_active_list_realistic"
  "../bench/fig16_active_list_realistic.pdb"
  "CMakeFiles/fig16_active_list_realistic.dir/fig16_active_list_realistic.cc.o"
  "CMakeFiles/fig16_active_list_realistic.dir/fig16_active_list_realistic.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_active_list_realistic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
