file(REMOVE_RECURSE
  "libjug_util.a"
)
