# Empty compiler generated dependencies file for jug_util.
# This may be replaced when dependencies are built.
