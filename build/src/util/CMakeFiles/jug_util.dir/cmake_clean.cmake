file(REMOVE_RECURSE
  "CMakeFiles/jug_util.dir/logging.cc.o"
  "CMakeFiles/jug_util.dir/logging.cc.o.d"
  "CMakeFiles/jug_util.dir/rng.cc.o"
  "CMakeFiles/jug_util.dir/rng.cc.o.d"
  "libjug_util.a"
  "libjug_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jug_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
