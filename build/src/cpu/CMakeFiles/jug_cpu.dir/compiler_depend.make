# Empty compiler generated dependencies file for jug_cpu.
# This may be replaced when dependencies are built.
