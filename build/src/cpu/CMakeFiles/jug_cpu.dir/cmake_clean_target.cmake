file(REMOVE_RECURSE
  "libjug_cpu.a"
)
