file(REMOVE_RECURSE
  "CMakeFiles/jug_cpu.dir/cpu_core.cc.o"
  "CMakeFiles/jug_cpu.dir/cpu_core.cc.o.d"
  "libjug_cpu.a"
  "libjug_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jug_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
