file(REMOVE_RECURSE
  "CMakeFiles/jug_sim.dir/event_loop.cc.o"
  "CMakeFiles/jug_sim.dir/event_loop.cc.o.d"
  "libjug_sim.a"
  "libjug_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jug_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
