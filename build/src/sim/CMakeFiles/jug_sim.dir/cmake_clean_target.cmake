file(REMOVE_RECURSE
  "libjug_sim.a"
)
