# Empty dependencies file for jug_sim.
# This may be replaced when dependencies are built.
