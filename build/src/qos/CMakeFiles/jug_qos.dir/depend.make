# Empty dependencies file for jug_qos.
# This may be replaced when dependencies are built.
