file(REMOVE_RECURSE
  "libjug_qos.a"
)
