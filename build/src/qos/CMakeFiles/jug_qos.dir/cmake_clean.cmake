file(REMOVE_RECURSE
  "CMakeFiles/jug_qos.dir/priority_controller.cc.o"
  "CMakeFiles/jug_qos.dir/priority_controller.cc.o.d"
  "libjug_qos.a"
  "libjug_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jug_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
