file(REMOVE_RECURSE
  "libjug_nic.a"
)
