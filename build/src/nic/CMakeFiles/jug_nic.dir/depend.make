# Empty dependencies file for jug_nic.
# This may be replaced when dependencies are built.
