
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nic/nic_rx.cc" "src/nic/CMakeFiles/jug_nic.dir/nic_rx.cc.o" "gcc" "src/nic/CMakeFiles/jug_nic.dir/nic_rx.cc.o.d"
  "/root/repo/src/nic/nic_tx.cc" "src/nic/CMakeFiles/jug_nic.dir/nic_tx.cc.o" "gcc" "src/nic/CMakeFiles/jug_nic.dir/nic_tx.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gro/CMakeFiles/jug_gro.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/jug_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/jug_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jug_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/jug_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/jug_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
