file(REMOVE_RECURSE
  "CMakeFiles/jug_nic.dir/nic_rx.cc.o"
  "CMakeFiles/jug_nic.dir/nic_rx.cc.o.d"
  "CMakeFiles/jug_nic.dir/nic_tx.cc.o"
  "CMakeFiles/jug_nic.dir/nic_tx.cc.o.d"
  "libjug_nic.a"
  "libjug_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jug_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
