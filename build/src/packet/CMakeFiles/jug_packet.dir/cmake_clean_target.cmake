file(REMOVE_RECURSE
  "libjug_packet.a"
)
