# Empty dependencies file for jug_packet.
# This may be replaced when dependencies are built.
