file(REMOVE_RECURSE
  "CMakeFiles/jug_packet.dir/packet.cc.o"
  "CMakeFiles/jug_packet.dir/packet.cc.o.d"
  "libjug_packet.a"
  "libjug_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jug_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
