
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/link.cc" "src/net/CMakeFiles/jug_net.dir/link.cc.o" "gcc" "src/net/CMakeFiles/jug_net.dir/link.cc.o.d"
  "/root/repo/src/net/load_balancer.cc" "src/net/CMakeFiles/jug_net.dir/load_balancer.cc.o" "gcc" "src/net/CMakeFiles/jug_net.dir/load_balancer.cc.o.d"
  "/root/repo/src/net/stages.cc" "src/net/CMakeFiles/jug_net.dir/stages.cc.o" "gcc" "src/net/CMakeFiles/jug_net.dir/stages.cc.o.d"
  "/root/repo/src/net/switch.cc" "src/net/CMakeFiles/jug_net.dir/switch.cc.o" "gcc" "src/net/CMakeFiles/jug_net.dir/switch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/packet/CMakeFiles/jug_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jug_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/jug_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
