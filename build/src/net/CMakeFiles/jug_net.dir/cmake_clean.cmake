file(REMOVE_RECURSE
  "CMakeFiles/jug_net.dir/link.cc.o"
  "CMakeFiles/jug_net.dir/link.cc.o.d"
  "CMakeFiles/jug_net.dir/load_balancer.cc.o"
  "CMakeFiles/jug_net.dir/load_balancer.cc.o.d"
  "CMakeFiles/jug_net.dir/stages.cc.o"
  "CMakeFiles/jug_net.dir/stages.cc.o.d"
  "CMakeFiles/jug_net.dir/switch.cc.o"
  "CMakeFiles/jug_net.dir/switch.cc.o.d"
  "libjug_net.a"
  "libjug_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jug_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
