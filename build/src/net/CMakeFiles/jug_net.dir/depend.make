# Empty dependencies file for jug_net.
# This may be replaced when dependencies are built.
