file(REMOVE_RECURSE
  "libjug_net.a"
)
