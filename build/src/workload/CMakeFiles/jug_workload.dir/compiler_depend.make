# Empty compiler generated dependencies file for jug_workload.
# This may be replaced when dependencies are built.
