file(REMOVE_RECURSE
  "CMakeFiles/jug_workload.dir/message_stream.cc.o"
  "CMakeFiles/jug_workload.dir/message_stream.cc.o.d"
  "CMakeFiles/jug_workload.dir/rpc_generator.cc.o"
  "CMakeFiles/jug_workload.dir/rpc_generator.cc.o.d"
  "libjug_workload.a"
  "libjug_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jug_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
