file(REMOVE_RECURSE
  "libjug_workload.a"
)
