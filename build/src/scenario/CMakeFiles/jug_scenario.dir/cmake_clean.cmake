file(REMOVE_RECURSE
  "CMakeFiles/jug_scenario.dir/chaos_scenario.cc.o"
  "CMakeFiles/jug_scenario.dir/chaos_scenario.cc.o.d"
  "CMakeFiles/jug_scenario.dir/host.cc.o"
  "CMakeFiles/jug_scenario.dir/host.cc.o.d"
  "CMakeFiles/jug_scenario.dir/topologies.cc.o"
  "CMakeFiles/jug_scenario.dir/topologies.cc.o.d"
  "libjug_scenario.a"
  "libjug_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jug_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
