# Empty compiler generated dependencies file for jug_scenario.
# This may be replaced when dependencies are built.
