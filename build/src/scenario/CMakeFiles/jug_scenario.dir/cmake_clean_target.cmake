file(REMOVE_RECURSE
  "libjug_scenario.a"
)
