# Empty dependencies file for jug_stats.
# This may be replaced when dependencies are built.
