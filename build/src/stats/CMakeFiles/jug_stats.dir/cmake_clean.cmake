file(REMOVE_RECURSE
  "CMakeFiles/jug_stats.dir/stats.cc.o"
  "CMakeFiles/jug_stats.dir/stats.cc.o.d"
  "CMakeFiles/jug_stats.dir/table_printer.cc.o"
  "CMakeFiles/jug_stats.dir/table_printer.cc.o.d"
  "libjug_stats.a"
  "libjug_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jug_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
