file(REMOVE_RECURSE
  "libjug_stats.a"
)
