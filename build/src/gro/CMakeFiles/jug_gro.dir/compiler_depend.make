# Empty compiler generated dependencies file for jug_gro.
# This may be replaced when dependencies are built.
