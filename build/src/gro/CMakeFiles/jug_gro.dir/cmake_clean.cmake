file(REMOVE_RECURSE
  "CMakeFiles/jug_gro.dir/baseline_gro.cc.o"
  "CMakeFiles/jug_gro.dir/baseline_gro.cc.o.d"
  "CMakeFiles/jug_gro.dir/gro_engine.cc.o"
  "CMakeFiles/jug_gro.dir/gro_engine.cc.o.d"
  "CMakeFiles/jug_gro.dir/presto_gro.cc.o"
  "CMakeFiles/jug_gro.dir/presto_gro.cc.o.d"
  "libjug_gro.a"
  "libjug_gro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jug_gro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
