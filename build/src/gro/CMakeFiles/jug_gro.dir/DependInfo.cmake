
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gro/baseline_gro.cc" "src/gro/CMakeFiles/jug_gro.dir/baseline_gro.cc.o" "gcc" "src/gro/CMakeFiles/jug_gro.dir/baseline_gro.cc.o.d"
  "/root/repo/src/gro/gro_engine.cc" "src/gro/CMakeFiles/jug_gro.dir/gro_engine.cc.o" "gcc" "src/gro/CMakeFiles/jug_gro.dir/gro_engine.cc.o.d"
  "/root/repo/src/gro/presto_gro.cc" "src/gro/CMakeFiles/jug_gro.dir/presto_gro.cc.o" "gcc" "src/gro/CMakeFiles/jug_gro.dir/presto_gro.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/packet/CMakeFiles/jug_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/jug_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/jug_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jug_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
