file(REMOVE_RECURSE
  "libjug_gro.a"
)
