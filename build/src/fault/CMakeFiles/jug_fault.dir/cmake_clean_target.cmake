file(REMOVE_RECURSE
  "libjug_fault.a"
)
