file(REMOVE_RECURSE
  "CMakeFiles/jug_fault.dir/fault_stage.cc.o"
  "CMakeFiles/jug_fault.dir/fault_stage.cc.o.d"
  "CMakeFiles/jug_fault.dir/juggler_auditor.cc.o"
  "CMakeFiles/jug_fault.dir/juggler_auditor.cc.o.d"
  "CMakeFiles/jug_fault.dir/link_flapper.cc.o"
  "CMakeFiles/jug_fault.dir/link_flapper.cc.o.d"
  "CMakeFiles/jug_fault.dir/stream_integrity.cc.o"
  "CMakeFiles/jug_fault.dir/stream_integrity.cc.o.d"
  "libjug_fault.a"
  "libjug_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jug_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
