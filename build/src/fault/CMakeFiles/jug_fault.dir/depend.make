# Empty dependencies file for jug_fault.
# This may be replaced when dependencies are built.
