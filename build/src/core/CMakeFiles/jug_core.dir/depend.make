# Empty dependencies file for jug_core.
# This may be replaced when dependencies are built.
