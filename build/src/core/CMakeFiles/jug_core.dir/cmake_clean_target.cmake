file(REMOVE_RECURSE
  "libjug_core.a"
)
