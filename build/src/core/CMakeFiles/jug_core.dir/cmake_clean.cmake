file(REMOVE_RECURSE
  "CMakeFiles/jug_core.dir/juggler.cc.o"
  "CMakeFiles/jug_core.dir/juggler.cc.o.d"
  "libjug_core.a"
  "libjug_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jug_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
