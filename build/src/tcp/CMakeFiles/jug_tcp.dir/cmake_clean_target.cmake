file(REMOVE_RECURSE
  "libjug_tcp.a"
)
