# Empty dependencies file for jug_tcp.
# This may be replaced when dependencies are built.
