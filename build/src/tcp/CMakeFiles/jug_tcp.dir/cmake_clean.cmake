file(REMOVE_RECURSE
  "CMakeFiles/jug_tcp.dir/tcp_endpoint.cc.o"
  "CMakeFiles/jug_tcp.dir/tcp_endpoint.cc.o.d"
  "libjug_tcp.a"
  "libjug_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jug_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
