# Empty dependencies file for bandwidth_guarantee.
# This may be replaced when dependencies are built.
