file(REMOVE_RECURSE
  "CMakeFiles/bandwidth_guarantee.dir/bandwidth_guarantee.cpp.o"
  "CMakeFiles/bandwidth_guarantee.dir/bandwidth_guarantee.cpp.o.d"
  "bandwidth_guarantee"
  "bandwidth_guarantee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bandwidth_guarantee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
