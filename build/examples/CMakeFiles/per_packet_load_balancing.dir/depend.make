# Empty dependencies file for per_packet_load_balancing.
# This may be replaced when dependencies are built.
