file(REMOVE_RECURSE
  "CMakeFiles/per_packet_load_balancing.dir/per_packet_load_balancing.cpp.o"
  "CMakeFiles/per_packet_load_balancing.dir/per_packet_load_balancing.cpp.o.d"
  "per_packet_load_balancing"
  "per_packet_load_balancing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/per_packet_load_balancing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
