file(REMOVE_RECURSE
  "CMakeFiles/chaos_runner.dir/chaos_runner.cpp.o"
  "CMakeFiles/chaos_runner.dir/chaos_runner.cpp.o.d"
  "chaos_runner"
  "chaos_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaos_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
