file(REMOVE_RECURSE
  "CMakeFiles/custom_gro_engine.dir/custom_gro_engine.cpp.o"
  "CMakeFiles/custom_gro_engine.dir/custom_gro_engine.cpp.o.d"
  "custom_gro_engine"
  "custom_gro_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_gro_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
