# Empty dependencies file for custom_gro_engine.
# This may be replaced when dependencies are built.
