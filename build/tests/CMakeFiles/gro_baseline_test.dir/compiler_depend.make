# Empty compiler generated dependencies file for gro_baseline_test.
# This may be replaced when dependencies are built.
