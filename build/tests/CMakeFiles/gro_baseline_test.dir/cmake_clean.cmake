file(REMOVE_RECURSE
  "CMakeFiles/gro_baseline_test.dir/gro_baseline_test.cc.o"
  "CMakeFiles/gro_baseline_test.dir/gro_baseline_test.cc.o.d"
  "gro_baseline_test"
  "gro_baseline_test.pdb"
  "gro_baseline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gro_baseline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
