file(REMOVE_RECURSE
  "CMakeFiles/juggler_property_test.dir/juggler_property_test.cc.o"
  "CMakeFiles/juggler_property_test.dir/juggler_property_test.cc.o.d"
  "juggler_property_test"
  "juggler_property_test.pdb"
  "juggler_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/juggler_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
