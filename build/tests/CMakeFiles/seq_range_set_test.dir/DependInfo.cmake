
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/seq_range_set_test.cc" "tests/CMakeFiles/seq_range_set_test.dir/seq_range_set_test.cc.o" "gcc" "tests/CMakeFiles/seq_range_set_test.dir/seq_range_set_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scenario/CMakeFiles/jug_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/jug_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/jug_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gro/CMakeFiles/jug_gro.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/jug_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/jug_net.dir/DependInfo.cmake"
  "/root/repo/build/src/qos/CMakeFiles/jug_qos.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/jug_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/jug_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/jug_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/jug_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jug_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/jug_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/jug_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
