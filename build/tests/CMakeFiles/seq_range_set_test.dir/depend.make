# Empty dependencies file for seq_range_set_test.
# This may be replaced when dependencies are built.
