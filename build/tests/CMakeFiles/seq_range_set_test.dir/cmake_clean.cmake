file(REMOVE_RECURSE
  "CMakeFiles/seq_range_set_test.dir/seq_range_set_test.cc.o"
  "CMakeFiles/seq_range_set_test.dir/seq_range_set_test.cc.o.d"
  "seq_range_set_test"
  "seq_range_set_test.pdb"
  "seq_range_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq_range_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
