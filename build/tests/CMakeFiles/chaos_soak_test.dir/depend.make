# Empty dependencies file for chaos_soak_test.
# This may be replaced when dependencies are built.
