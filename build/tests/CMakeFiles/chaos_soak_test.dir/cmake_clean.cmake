file(REMOVE_RECURSE
  "CMakeFiles/chaos_soak_test.dir/chaos_soak_test.cc.o"
  "CMakeFiles/chaos_soak_test.dir/chaos_soak_test.cc.o.d"
  "chaos_soak_test"
  "chaos_soak_test.pdb"
  "chaos_soak_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaos_soak_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
