file(REMOVE_RECURSE
  "CMakeFiles/dctcp_test.dir/dctcp_test.cc.o"
  "CMakeFiles/dctcp_test.dir/dctcp_test.cc.o.d"
  "dctcp_test"
  "dctcp_test.pdb"
  "dctcp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dctcp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
