file(REMOVE_RECURSE
  "CMakeFiles/qos_workload_test.dir/qos_workload_test.cc.o"
  "CMakeFiles/qos_workload_test.dir/qos_workload_test.cc.o.d"
  "qos_workload_test"
  "qos_workload_test.pdb"
  "qos_workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qos_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
