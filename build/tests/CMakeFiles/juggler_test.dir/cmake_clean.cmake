file(REMOVE_RECURSE
  "CMakeFiles/juggler_test.dir/juggler_test.cc.o"
  "CMakeFiles/juggler_test.dir/juggler_test.cc.o.d"
  "juggler_test"
  "juggler_test.pdb"
  "juggler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/juggler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
