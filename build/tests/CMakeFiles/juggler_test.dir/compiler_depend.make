# Empty compiler generated dependencies file for juggler_test.
# This may be replaced when dependencies are built.
