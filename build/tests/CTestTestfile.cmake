# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_test[1]_include.cmake")
include("/root/repo/build/tests/packet_test[1]_include.cmake")
include("/root/repo/build/tests/gro_baseline_test[1]_include.cmake")
include("/root/repo/build/tests/juggler_test[1]_include.cmake")
include("/root/repo/build/tests/juggler_property_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/nic_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_sack_test[1]_include.cmake")
include("/root/repo/build/tests/seq_range_set_test[1]_include.cmake")
include("/root/repo/build/tests/dctcp_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_test[1]_include.cmake")
include("/root/repo/build/tests/qos_workload_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/fault_test[1]_include.cmake")
include("/root/repo/build/tests/chaos_soak_test[1]_include.cmake")
