// Example: passive bandwidth guarantees by dynamic packet prioritization
// (§2.1, §5.3.1).
//
// One target flow competes with 7 antagonists for a 40Gb/s two-priority
// interconnect. A PriorityController marks the target flow's packets
// high-priority with probability p, adapting p by Eq. (1):
//     p <- p + alpha * (Rt - Rm)
// No rate limiter, no hypervisor shim — the receiver just has to tolerate
// the reordering that mixed-priority queueing creates, which Juggler does.
//
// Run: ./build/examples/bandwidth_guarantee [guarantee_gbps]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/qos/priority_controller.h"
#include "src/scenario/gro_factories.h"
#include "src/scenario/topologies.h"

using namespace juggler;

int main(int argc, char** argv) {
  const long guarantee_gbps = argc > 1 ? std::strtol(argv[1], nullptr, 10) : 20;
  std::printf("Guaranteeing %ldGb/s to one of 8 flows on a 40Gb/s interconnect\n\n",
              guarantee_gbps);

  SimWorld world;
  DumbbellOptions opt;
  opt.host_template.rx.int_coalesce = Us(125);
  opt.host_template.rx.num_queues = 8;
  opt.host_template.num_app_cores = 8;
  JugglerConfig jcfg;
  jcfg.inseq_timeout = Us(13);
  jcfg.ofo_timeout = Us(100);
  opt.host_template.gro_factory = MakeJugglerFactory(jcfg);
  DumbbellTestbed t = BuildDumbbell(&world, opt);

  EndpointPair target = ConnectHosts(t.sender1, t.receiver1, 1000, 2000);
  std::vector<EndpointPair> antagonists;
  for (uint16_t i = 0; i < 7; ++i) {
    antagonists.push_back(ConnectHosts(t.sender2, t.receiver2, 3000 + i, 4000 + i));
    antagonists.back().a_to_b->SendForever();
  }
  target.a_to_b->SendForever();

  // Fair-share phase.
  world.loop.RunUntil(Ms(40));
  const uint64_t fair_bytes = target.b_to_a->bytes_delivered();
  std::printf("fair share (before controller): %.2f Gb/s\n",
              ToGbps(RateBps(static_cast<int64_t>(fair_bytes), Ms(40))));

  // Start the Eq. (1) controller.
  PriorityControllerConfig pcfg;
  pcfg.alpha = 0.1;
  pcfg.target_rate_bps = guarantee_gbps * kGbps;
  pcfg.line_rate_bps = 40 * kGbps;
  PriorityController controller(&world.loop, pcfg, target.a_to_b);
  controller.Start();

  // Report the achieved rate every 20ms.
  uint64_t last = target.b_to_a->bytes_delivered();
  for (int i = 1; i <= 6; ++i) {
    world.loop.RunUntil(Ms(40) + i * Ms(20));
    const uint64_t now_bytes = target.b_to_a->bytes_delivered();
    std::printf("t=%3dms  achieved %.2f Gb/s   p=%.3f\n", i * 20,
                ToGbps(RateBps(static_cast<int64_t>(now_bytes - last), Ms(20))),
                controller.p());
    last = now_bytes;
  }
  std::printf(
      "\nThe controller raises p until the high-priority fraction of the\n"
      "target flow displaces enough antagonist traffic to meet the guarantee.\n");
  return 0;
}
