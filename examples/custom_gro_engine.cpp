// Example: plugging a custom engine into the GRO seam.
//
// The GroEngine interface is the boundary where Juggler attaches to the
// receive path; anything implementing Receive/PollComplete/OnTimer can slot
// into a NIC RX queue. This example writes a minimal custom engine — a
// counting pass-through that also demonstrates segment delivery and CPU
// cost reporting — and runs it side by side with Juggler.
//
// Run: ./build/examples/custom_gro_engine

#include <cstdio>
#include <memory>

#include "src/scenario/gro_factories.h"
#include "src/scenario/topologies.h"

using namespace juggler;

namespace {

// A deliberately tiny engine: no merging, but it tags flush reasons and
// charges a fixed per-packet CPU cost. Start here when prototyping your own
// reordering or batching policy.
class CountingPassthrough : public GroEngine {
 public:
  explicit CountingPassthrough(const CpuCostModel* costs) : costs_(costs) {}

  TimeNs Receive(PacketPtr packet) override {
    ++stats_.packets_in;
    if (packet->payload_len > 0) {
      ++stats_.data_packets_in;
    } else {
      ++stats_.acks_in;
    }
    // ToSegment + Deliver is all an engine must do; batching is optional.
    Deliver(ToSegment(*packet), FlushReason::kPollEnd);
    return costs_->gro_per_packet + costs_->gro_flush_per_segment;
  }

  TimeNs PollComplete() override { return 0; }

  std::string name() const override { return "counting_passthrough"; }

 private:
  const CpuCostModel* costs_;
};

double RunOnce(const NicRx::GroFactory& factory, const char* label) {
  SimWorld world;
  NetFpgaOptions opt;
  opt.link_rate_bps = 10 * kGbps;
  opt.reorder_delay = Us(250);
  opt.sender.gro_factory = MakeStandardGroFactory();
  opt.receiver.gro_factory = factory;
  NetFpgaTestbed t = BuildNetFpga(&world, opt);
  EndpointPair conn = ConnectHosts(t.sender, t.receiver, 1000, 2000);
  conn.a_to_b->SendForever();
  world.loop.RunUntil(Ms(100));
  const double gbps = ToGbps(
      RateBps(static_cast<int64_t>(conn.b_to_a->bytes_delivered()), world.loop.now()));
  std::printf("%-22s %.2f Gb/s, %lu segments to TCP\n", label, gbps,
              static_cast<unsigned long>(
                  t.receiver->nic_rx()->TotalGroStats().data_segments_out));
  return gbps;
}

}  // namespace

int main() {
  std::printf("Custom GRO engines on a reordered 10Gb/s path:\n\n");
  RunOnce(
      [](const CpuCostModel* costs) -> std::unique_ptr<GroEngine> {
        return std::make_unique<CountingPassthrough>(costs);
      },
      "counting_passthrough:");
  RunOnce(MakeStandardGroFactory(), "standard_gro:");
  JugglerConfig config;
  config.inseq_timeout = Us(52);
  config.ofo_timeout = Us(150);
  RunOnce(MakeJugglerFactory(config), "juggler:");
  std::printf(
      "\nThe pass-through engine floods TCP with per-MTU segments; standard\n"
      "GRO batches but breaks on reordering; Juggler does both jobs.\n");
  return 0;
}
