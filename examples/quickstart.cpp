// Quickstart: the smallest end-to-end Juggler demo.
//
// Two hosts, a 10Gb/s path that reorders packets by hashing them across two
// lanes with a 250us delay difference (the paper's NetFPGA testbed), and one
// bulk TCP flow. We run the identical experiment twice — once with the
// stock "vanilla" GRO receive path and once with Juggler — and print what
// the transport experienced.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "src/scenario/gro_factories.h"
#include "src/scenario/topologies.h"

using namespace juggler;

namespace {

void RunOnce(const char* label, NicRx::GroFactory gro_factory) {
  // A SimWorld bundles the event loop, packet factory and CPU cost model.
  SimWorld world;

  // Describe the two hosts. Everything interesting lives in the GRO factory:
  // it decides which engine each RX queue runs.
  NetFpgaOptions opt;
  opt.link_rate_bps = 10 * kGbps;
  opt.reorder_delay = Us(250);
  opt.sender.rx.int_coalesce = Us(125);
  opt.sender.gro_factory = MakeStandardGroFactory();
  opt.receiver = opt.sender;
  opt.receiver.gro_factory = std::move(gro_factory);
  NetFpgaTestbed testbed = BuildNetFpga(&world, opt);

  // One bulk TCP connection, sender -> receiver.
  EndpointPair conn = ConnectHosts(testbed.sender, testbed.receiver, 1000, 2000);
  conn.a_to_b->SendForever();

  // Simulate 200ms.
  world.loop.RunUntil(Ms(200));

  const GroStats gro = testbed.receiver->nic_rx()->TotalGroStats();
  const TcpSenderStats& snd = conn.a_to_b->sender_stats();
  const TcpReceiverStats& rcv = conn.b_to_a->receiver_stats();
  std::printf("%s\n", label);
  std::printf("  goodput             : %.2f Gb/s\n",
              ToGbps(RateBps(static_cast<int64_t>(rcv.bytes_delivered), world.loop.now())));
  std::printf("  batching extent     : %.1f MTUs/segment\n", gro.AvgBatchingExtent());
  std::printf("  OOO segments at TCP : %lu\n", static_cast<unsigned long>(rcv.ooo_segments_in));
  std::printf("  fast retransmits    : %lu\n",
              static_cast<unsigned long>(snd.fast_retransmits));
  std::printf("  ACKs sent           : %lu\n\n", static_cast<unsigned long>(rcv.acks_sent));
}

}  // namespace

int main() {
  std::printf("Juggler quickstart: 10Gb/s flow with 250us of path reordering\n\n");

  RunOnce("vanilla receive path (standard GRO):", MakeStandardGroFactory());

  // Juggler tuned per the paper's rule of thumb (§5.2.1): inseq_timeout =
  // one 64KB TSO at line rate (52us at 10G); ofo_timeout ~ the reordering
  // delay minus the 125us absorbed by interrupt coalescing.
  JugglerConfig config;
  config.inseq_timeout = Us(52);
  config.ofo_timeout = Us(150);
  config.max_flows = 64;
  RunOnce("Juggler receive path:", MakeJugglerFactory(config));

  std::printf(
      "Expected: the vanilla run shows tiny batches, thousands of out-of-order\n"
      "segments and spurious fast retransmits; the Juggler run batches ~34\n"
      "MTUs/segment, hides (almost) all reordering and holds ~9.3Gb/s.\n");
  return 0;
}
