// Example: per-packet load balancing on a Clos fabric (§2.2, §5.3.2).
//
// Builds the paper's Figure 19 topology — two ToRs, two spines — and runs a
// mixed RPC workload (1MB bulk + 150B latency-sensitive) at 75% load under
// three ToR uplink policies: per-flow ECMP, Presto-style per-TSO flowcells,
// and per-packet spraying. Receivers run Juggler, so spraying is safe.
//
// Run: ./build/examples/per_packet_load_balancing

#include <cstdio>
#include <memory>
#include <vector>

#include "src/scenario/gro_factories.h"
#include "src/scenario/topologies.h"
#include "src/stats/table_printer.h"
#include "src/workload/rpc_generator.h"

using namespace juggler;

namespace {

struct Result {
  double small_p50_us;
  double small_p99_us;
  double large_p99_ms;
};

Result RunPolicy(LbPolicy policy) {
  SimWorld world;
  ClosOptions opt;
  opt.hosts_per_tor = 8;
  opt.lb = policy;
  opt.host_template.rx.int_coalesce = Us(125);
  opt.host_template.rx.num_queues = 8;
  opt.host_template.num_app_cores = 8;
  JugglerConfig jcfg;
  jcfg.inseq_timeout = Us(13);  // one 64KB TSO at 40Gb/s
  jcfg.ofo_timeout = Us(300);   // max expected cross-path delay difference
  opt.host_template.gro_factory = MakeJugglerFactory(jcfg);
  ClosTestbed t = BuildClos(&world, opt);

  PercentileSampler small_lat;
  PercentileSampler large_lat;
  std::vector<std::unique_ptr<MessageStream>> streams;
  std::vector<std::unique_ptr<OpenLoopRpcGenerator>> generators;
  for (size_t h = 0; h < 8; ++h) {
    const bool large = h < 4;
    std::vector<MessageStream*> pair_streams;
    for (uint16_t c = 0; c < 8; ++c) {
      EndpointPair pair = ConnectHosts(t.left_hosts[h], t.right_hosts[h],
                                       static_cast<uint16_t>(1000 + c), 2000);
      streams.push_back(std::make_unique<MessageStream>(&world.loop, pair.a_to_b, pair.b_to_a,
                                                        large ? &large_lat : &small_lat));
      pair_streams.push_back(streams.back().get());
    }
    RpcGeneratorConfig gcfg;
    gcfg.message_bytes = large ? 1'000'000 : 150;
    // 75% of the 80Gb/s uplink capacity, mostly from the large RPCs.
    gcfg.messages_per_sec =
        large ? (0.75 * 80e9 - 4e8) / 4 / 8e6 : 100e6 / (150 * 8.0);
    gcfg.stop_time = Ms(120);
    gcfg.seed = 33 + h;
    generators.push_back(std::make_unique<OpenLoopRpcGenerator>(&world.loop, gcfg, pair_streams));
    generators.back()->Start();
  }
  world.loop.RunUntil(Ms(140));
  return Result{small_lat.Percentile(50), small_lat.Percentile(99),
                large_lat.Percentile(99) / 1000.0};
}

}  // namespace

int main() {
  std::printf("Per-packet load balancing on a 2-spine Clos at 75%% load\n\n");
  TablePrinter table(
      {"uplink policy", "150B RPC p50(us)", "150B RPC p99(us)", "1MB RPC p99(ms)"});
  for (LbPolicy policy : {LbPolicy::kEcmp, LbPolicy::kPerTso, LbPolicy::kPerPacket}) {
    const Result r = RunPolicy(policy);
    table.AddRow({LbPolicyName(policy), TablePrinter::Num(r.small_p50_us, 0),
                  TablePrinter::Num(r.small_p99_us, 0), TablePrinter::Num(r.large_p99_ms, 2)});
  }
  table.Print();
  std::printf(
      "\nPer-packet spraying keeps both uplinks evenly loaded, so the small-RPC\n"
      "tail stays low where ECMP hash collisions pile up queueing delay.\n");
  return 0;
}
