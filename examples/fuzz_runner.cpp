// Self-driving chaos fuzzer: randomized ScenarioSpecs, each executed in a
// watchdogged child, failures classified, deduped, delta-debugged down to a
// minimal spec and written out as a replayable repro bundle.
//
// Usage:
//   ./build/examples/fuzz_runner                          # 20 specs, seed 1
//   ./build/examples/fuzz_runner --specs 100 --seed 7
//   ./build/examples/fuzz_runner --out repro/             # write bundles
//   ./build/examples/fuzz_runner --budget-ms 30000        # stop after 30s
//   ./build/examples/fuzz_runner --timeout-ms 10000       # per-child watchdog
//   ./build/examples/fuzz_runner --no-shrink
//   ./build/examples/fuzz_runner --no-obs                 # skip trace attachments
//
// Bundles for cooperative failures (invariant violation, digest divergence,
// exception) carry a flight-recorder attachment — metrics snapshot plus a
// Chrome/Perfetto trace of the shrunk spec — unless --no-obs is given.
//
// Exit status: 0 when every spec ran clean, 1 when any finding was made.
// Replay a bundle with: ./build/examples/replay_runner --bundle <file>.json

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/forensics/fuzz_supervisor.h"

using namespace juggler;

int main(int argc, char** argv) {
  FuzzOptions opt;
  opt.verbose = true;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--specs") == 0) {
      opt.num_specs = std::atoi(next("--specs"));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      opt.seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--timeout-ms") == 0) {
      opt.timeout_ms = std::atoi(next("--timeout-ms"));
    } else if (std::strcmp(argv[i], "--budget-ms") == 0) {
      opt.time_budget_ms = std::atoll(next("--budget-ms"));
    } else if (std::strcmp(argv[i], "--out") == 0) {
      opt.out_dir = next("--out");
    } else if (std::strcmp(argv[i], "--no-shrink") == 0) {
      opt.shrink = false;
    } else if (std::strcmp(argv[i], "--no-obs") == 0) {
      opt.attach_obs = false;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      opt.verbose = false;
    } else if (std::strcmp(argv[i], "--app-prob") == 0) {
      opt.limits.app_prob = std::atof(next("--app-prob"));
      if (opt.limits.app_prob < 0.0 || opt.limits.app_prob > 1.0) {
        std::fprintf(stderr, "--app-prob must be in [0, 1]\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--overload-prob") == 0) {
      opt.limits.overload_prob = std::atof(next("--overload-prob"));
      if (opt.limits.overload_prob < 0.0 || opt.limits.overload_prob > 1.0) {
        std::fprintf(stderr, "--overload-prob must be in [0, 1]\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--plant-app-stale-token") == 0) {
      opt.plant_app_stale_token = true;  // validates the app forensics path
    } else {
      std::fprintf(stderr,
                   "usage: %s [--specs N] [--seed S] [--timeout-ms T] [--budget-ms B]\n"
                   "          [--out DIR] [--app-prob P] [--overload-prob P]\n"
                   "          [--plant-app-stale-token] [--no-shrink] [--no-obs] [--quiet]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf("fuzz: %d specs, seed %llu, %dms watchdog%s\n", opt.num_specs,
              static_cast<unsigned long long>(opt.seed), opt.timeout_ms,
              opt.out_dir.empty() ? "" : (", bundles -> " + opt.out_dir).c_str());

  const FuzzReport report = RunFuzz(opt);

  std::printf("\n%d specs run, %d failing, %zu distinct finding(s)\n", report.specs_run,
              report.failures, report.findings.size());
  for (const FuzzFinding& f : report.findings) {
    std::printf("  [%016llx] %s: %s\n",
                static_cast<unsigned long long>(f.signature.fingerprint),
                SignatureKindName(f.signature.kind), f.signature.detail.c_str());
    std::printf("      found at spec #%d (family=%s seed=%llu); shrink accepted %d/%d,"
                " timeline %zu event(s)\n",
                f.spec_index, FaultFamilyName(f.spec.family),
                static_cast<unsigned long long>(f.spec.seed), f.shrink_accepted, f.shrink_runs,
                f.shrunk.TimelineEvents());
    if (!f.bundle_path.empty()) {
      std::printf("      bundle: %s\n", f.bundle_path.c_str());
    }
  }
  std::printf("%s\n", report.findings.empty() ? "PASS" : "FAIL");
  return report.findings.empty() ? 0 : 1;
}
