// Deterministic replay of a forensics repro bundle.
//
// Reads a bundle written by fuzz_runner (or by hand), re-executes its
// ScenarioSpec in a watchdogged child — exactly the way the fuzzer ran it —
// and checks the observed FailureSignature against the recorded one. Runs
// the replay `--repeat` times (default 2) so flaky "reproductions" are
// caught immediately: a real bundle produces the identical fingerprint
// every single time.
//
// Usage:
//   ./build/examples/replay_runner --bundle repro/bundle-<fp>.json
//   ./build/examples/replay_runner --bundle x.json --repeat 5 --timeout-ms 60000
//   ./build/examples/replay_runner --bundle x.json --trace out.json
//
// Exit status: 0 when every replay reproduced the recorded signature.
// --trace writes the bundle's attached flight-recorder trace (Chrome/Perfetto
// JSON) to FILE; when the bundle carries none, the spec is re-run in-process
// with tracing on — cooperative failure kinds only.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/forensics/repro_bundle.h"
#include "src/obs/flight_recorder.h"

using namespace juggler;

int main(int argc, char** argv) {
  std::string bundle_path;
  std::string trace_path;
  int repeat = 2;
  int timeout_ms = 30'000;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--bundle") == 0) {
      bundle_path = next("--bundle");
    } else if (std::strcmp(argv[i], "--repeat") == 0) {
      repeat = std::atoi(next("--repeat"));
    } else if (std::strcmp(argv[i], "--timeout-ms") == 0) {
      timeout_ms = std::atoi(next("--timeout-ms"));
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace_path = next("--trace");
    } else {
      std::fprintf(stderr,
                   "usage: %s --bundle FILE [--repeat N] [--timeout-ms T] [--trace FILE]\n",
                   argv[0]);
      return 2;
    }
  }
  if (bundle_path.empty()) {
    std::fprintf(stderr, "--bundle is required\n");
    return 2;
  }

  ReproBundle bundle;
  std::string error;
  if (!ReadBundleFile(bundle_path, &bundle, &error)) {
    std::fprintf(stderr, "cannot load bundle: %s\n", error.c_str());
    return 2;
  }

  std::printf("bundle: %s\n", bundle_path.c_str());
  std::printf("  recorded: [%016llx] %s: %s\n",
              static_cast<unsigned long long>(bundle.signature.fingerprint),
              SignatureKindName(bundle.signature.kind), bundle.signature.detail.c_str());
  if (!bundle.notes.empty()) {
    std::printf("  notes: %s\n", bundle.notes.c_str());
  }
  std::printf("  spec: family=%s seed=%llu bytes=%llu timeline=%zu event(s)\n\n",
              FaultFamilyName(bundle.spec.family),
              static_cast<unsigned long long>(bundle.spec.seed),
              static_cast<unsigned long long>(bundle.spec.transfer_bytes),
              bundle.spec.TimelineEvents());

  int reproduced = 0;
  for (int i = 0; i < repeat; ++i) {
    const ReplayResult r = ReplayBundle(bundle, timeout_ms);
    std::printf("replay %d/%d: [%016llx] %s: %s -> %s (%lldms)\n", i + 1, repeat,
                static_cast<unsigned long long>(r.observed.fingerprint),
                SignatureKindName(r.observed.kind), r.observed.detail.c_str(),
                r.reproduced ? "reproduced" : "DIFFERENT", (long long)r.outcome.child.wall_ms);
    if (r.reproduced) {
      ++reproduced;
    }
  }

  if (!trace_path.empty()) {
    Json trace;
    const Json* attached =
        bundle.obs.is_object() ? bundle.obs.Find("trace") : nullptr;
    if (attached != nullptr) {
      trace = *attached;
      std::printf("\ntrace: using the bundle's attached flight-recorder snapshot\n");
    } else {
      const SignatureKind kind = bundle.signature.kind;
      const bool cooperative = kind == SignatureKind::kInvariantViolation ||
                               kind == SignatureKind::kDigestDivergence ||
                               kind == SignatureKind::kException;
      if (!cooperative || bundle.spec.plant_wedge) {
        std::fprintf(stderr,
                     "trace: bundle has no attachment and its failure kind is not safe"
                     " to re-run in-process\n");
        return 2;
      }
      std::printf("\ntrace: no attachment in bundle; re-running the spec with tracing on\n");
      const Json obs = CollectSpecObs(bundle.spec);
      const Json* fresh = obs.Find("trace");
      if (fresh == nullptr) {
        std::string why = "unknown";
        obs.GetString("error", &why);
        std::fprintf(stderr, "trace: in-process collection failed: %s\n", why.c_str());
        return 2;
      }
      trace = *fresh;
    }
    std::string werr;
    if (!WriteTraceFile(trace_path, trace, &werr)) {
      std::fprintf(stderr, "trace write failed: %s\n", werr.c_str());
      return 2;
    }
    std::printf("trace -> %s\n", trace_path.c_str());
  }

  std::printf("\n%d/%d replays reproduced the recorded signature: %s\n", reproduced, repeat,
              reproduced == repeat ? "PASS" : "FAIL");
  return reproduced == repeat ? 0 : 1;
}
