// Chaos soak runner: randomized fault timelines against Juggler and the
// baseline stack, differentially, with full invariant checking.
//
// Each run picks a fault family and a seed, composes a random fault
// schedule, and drives the same bulk transfer through both receive paths.
// The run fails if either stack breaks an invariant (bytes lost, duplicated,
// reordered past TCP, gro_table structure corrupted) or the two stacks
// disagree on the delivered byte stream.
//
// Usage:
//   ./build/examples/chaos_runner                    # 5 families x 4 seeds
//   ./build/examples/chaos_runner --seeds 20         # 5 families x 20 seeds
//   ./build/examples/chaos_runner --family corrupt --seeds 8
//   ./build/examples/chaos_runner --base-seed 42 --bytes 3000000
//   ./build/examples/chaos_runner --shards 4       # sharded parallel engine
//   ./build/examples/chaos_runner --metrics        # per-run metrics tables
//   ./build/examples/chaos_runner --trace out.json # Chrome/Perfetto trace
//   ./build/examples/chaos_runner --app rpc        # RPC workload w/ retries
//   ./build/examples/chaos_runner --app bulk-transfer --stack presto
//   ./build/examples/chaos_runner --overload       # incast/churn/brownout
//                                                  # pressure + recovery audit
//   ./build/examples/chaos_runner --rx-driver corec  # COREC concurrent
//                                                    # single-queue RX driver
//
// Exit status: 0 when every run is clean, 1 on any violation or mismatch —
// the failing (family, seed) pair printed is a complete repro recipe.
// With --shards N the scenario runs on the sharded conservative-lookahead
// engine; the digest is identical for every N >= 1, so a repro found at
// --shards 8 replays at --shards 1. --trace collects the Juggler engine's
// flight-recorder events across every run into one trace file (load it at
// ui.perfetto.dev or chrome://tracing); events and metrics are byte-identical
// for every --shards N >= 1.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/scenario/chaos_scenario.h"

using namespace juggler;

namespace {

const FaultFamily kAllFamilies[] = {
    FaultFamily::kDropBurst, FaultFamily::kDuplicate, FaultFamily::kCorrupt,
    FaultFamily::kDelaySpike, FaultFamily::kLinkFlap,
};

}  // namespace

int main(int argc, char** argv) {
  int seeds = 4;
  uint64_t base_seed = 1;
  uint64_t bytes = 1'500'000;
  size_t shards = 0;
  bool metrics = false;
  bool overload = false;
  AppWorkloadKind app_kind = AppWorkloadKind::kNone;
  bool single_stack = false;
  StackKind stack = StackKind::kJuggler;
  RxDriverKind rx_driver = RxDriverKind::kRss;
  std::string trace_path;
  std::vector<FaultFamily> families(std::begin(kAllFamilies), std::end(kAllFamilies));

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace_path = next("--trace");
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics = true;
    } else if (std::strcmp(argv[i], "--overload") == 0) {
      overload = true;
    } else if (std::strcmp(argv[i], "--seeds") == 0) {
      seeds = std::atoi(next("--seeds"));
    } else if (std::strcmp(argv[i], "--base-seed") == 0) {
      base_seed = std::strtoull(next("--base-seed"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--bytes") == 0) {
      bytes = std::strtoull(next("--bytes"), nullptr, 10);
      if (bytes == 0) {
        std::fprintf(stderr, "--bytes must be > 0\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      shards = static_cast<size_t>(std::strtoull(next("--shards"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--family") == 0) {
      FaultFamily f;
      if (!ParseFaultFamily(next("--family"), &f)) {
        std::fprintf(stderr, "unknown family (drop-burst duplicate corrupt delay-spike "
                             "link-flap mixed)\n");
        return 2;
      }
      families.assign(1, f);
    } else if (std::strcmp(argv[i], "--app") == 0) {
      if (!ParseAppWorkloadKind(next("--app"), &app_kind) ||
          app_kind == AppWorkloadKind::kNone) {
        std::fprintf(stderr, "unknown app workload (rpc bulk-transfer incast replication)\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--stack") == 0) {
      if (!ParseStackKind(next("--stack"), &stack)) {
        std::fprintf(stderr, "unknown stack (juggler vanilla presto)\n");
        return 2;
      }
      single_stack = true;
    } else if (std::strcmp(argv[i], "--rx-driver") == 0) {
      if (!ParseRxDriverKind(next("--rx-driver"), &rx_driver)) {
        std::fprintf(stderr, "unknown rx driver (rss corec)\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "usage: %s [--seeds N] [--base-seed S] [--bytes B] "
                           "[--family NAME] [--shards N] [--app KIND] [--stack NAME] "
                           "[--rx-driver NAME] [--overload] [--metrics] [--trace FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf("chaos soak: %zu families x %d seeds, %llu bytes per run\n\n",
              families.size(), seeds, static_cast<unsigned long long>(bytes));
  std::printf("%-12s %6s  %-8s %10s %10s %8s %8s %8s  %s\n", "family", "seed", "result",
              "jug_ns", "base_ns", "pkts", "faults", "flaps", "digest");

  int failures = 0;
  std::vector<TraceEvent> all_events;
  uint64_t trace_dropped = 0;
  for (FaultFamily family : families) {
    for (int s = 0; s < seeds; ++s) {
      ChaosOptions opt;
      opt.seed = base_seed + static_cast<uint64_t>(s);
      opt.family = family;
      opt.transfer_bytes = bytes;
      opt.shards = shards;
      opt.rx_driver = rx_driver;
      opt.obs.metrics = metrics;
      opt.obs.trace = !trace_path.empty();
      if (app_kind != AppWorkloadKind::kNone) {
        opt.app.kind = app_kind;
        opt.app.response_bytes = 12'288;
        opt.app.chunk_bytes = 49'152;
        opt.app.transfer_bytes_per_session = 3 * opt.app.chunk_bytes;
      }
      if (overload) {
        // One window of each kind: an incast storm, an ephemeral-flow churn
        // flood, then a memory brown-out that shrinks the caps mid-run.
        opt.overload.pool_capacity = 4'096;
        OverloadWindow incast;
        incast.kind = OverloadKind::kIncast;
        incast.start = Ms(5);
        incast.end = Ms(15);
        incast.flows = 96;
        incast.packets_per_flow = 4;
        incast.burst_interval = Us(150);
        opt.overload.windows.push_back(incast);
        OverloadWindow churn;
        churn.kind = OverloadKind::kChurn;
        churn.start = Ms(20);
        churn.end = Ms(30);
        churn.flows = 64;
        churn.packets_per_flow = 2;
        churn.burst_interval = Us(200);
        opt.overload.windows.push_back(churn);
        OverloadWindow brownout;
        brownout.kind = OverloadKind::kBrownout;
        brownout.start = Ms(35);
        brownout.end = Ms(45);
        brownout.cap_pct = 25;
        opt.overload.windows.push_back(brownout);
      }

      if (single_stack) {
        // One engine, no differential: --stack picks which GRO path the
        // workload rides (presto has no differential partner).
        const ChaosEngineResult er = RunChaosEngineStack(opt, stack);
        const bool ok = er.completed && er.violations == 0;
        std::printf("%-12s %6llu  %-8s %10lld %10s %8llu %8s %8llu  %016llx\n",
                    FaultFamilyName(family), static_cast<unsigned long long>(opt.seed),
                    ok ? "ok" : "FAIL", static_cast<long long>(er.finish_time), "-",
                    static_cast<unsigned long long>(er.faults.packets_in), "-",
                    static_cast<unsigned long long>(er.flaps),
                    static_cast<unsigned long long>(er.digest));
        if (opt.app.enabled()) {
          std::printf("    app[%s/%s]: %llu issued, %llu ok, %llu timeout, %llu aborted, "
                      "%llu retries, %llu dedup\n",
                      StackKindName(stack), AppWorkloadKindName(app_kind),
                      static_cast<unsigned long long>(er.app.issued),
                      static_cast<unsigned long long>(er.app.ok),
                      static_cast<unsigned long long>(er.app.timeouts),
                      static_cast<unsigned long long>(er.app.aborted),
                      static_cast<unsigned long long>(er.app.retries),
                      static_cast<unsigned long long>(er.app.duplicates_suppressed));
        }
        if (overload) {
          std::printf("    overload[%s]: %llu injected, %llu inject-drops, %llu exhausted, "
                      "%llu ring-drops, peak pool %llu, leaked %lld\n",
                      StackKindName(stack),
                      static_cast<unsigned long long>(er.overload.injected_packets),
                      static_cast<unsigned long long>(er.overload.inject_alloc_drops),
                      static_cast<unsigned long long>(er.overload_pool_exhausted),
                      static_cast<unsigned long long>(er.overload_ring_drops),
                      static_cast<unsigned long long>(er.overload_peak_pool),
                      static_cast<long long>(er.overload_pool_leaked));
        }
        if (metrics) {
          std::printf("%s", er.obs.metrics.ToTable().c_str());
        }
        if (!trace_path.empty()) {
          all_events.insert(all_events.end(), er.obs.events.begin(), er.obs.events.end());
          trace_dropped += er.obs.trace_dropped;
        }
        if (!ok) {
          ++failures;
          for (const std::string& m : er.violation_messages) {
            std::printf("    %s: %s\n", er.engine.c_str(), m.c_str());
          }
        }
        continue;
      }

      const ChaosResult r = RunChaos(opt);
      const uint64_t fault_events = r.juggler.faults.drops + r.juggler.faults.duplicates +
                                    r.juggler.faults.corruptions +
                                    r.juggler.faults.truncations + r.juggler.faults.delayed;
      std::printf("%-12s %6llu  %-8s %10lld %10lld %8llu %8llu %8llu  %016llx\n",
                  FaultFamilyName(family), static_cast<unsigned long long>(opt.seed),
                  r.ok ? "ok" : "FAIL", static_cast<long long>(r.juggler.finish_time),
                  static_cast<long long>(r.baseline.finish_time),
                  static_cast<unsigned long long>(r.juggler.faults.packets_in),
                  static_cast<unsigned long long>(fault_events),
                  static_cast<unsigned long long>(r.juggler.flaps),
                  static_cast<unsigned long long>(r.juggler.digest));
      if (opt.app.enabled()) {
        std::printf("    app[%s]: %llu issued, %llu ok, %llu timeout, %llu aborted, "
                    "%llu retries, %llu dedup\n",
                    AppWorkloadKindName(app_kind),
                    static_cast<unsigned long long>(r.juggler.app.issued),
                    static_cast<unsigned long long>(r.juggler.app.ok),
                    static_cast<unsigned long long>(r.juggler.app.timeouts),
                    static_cast<unsigned long long>(r.juggler.app.aborted),
                    static_cast<unsigned long long>(r.juggler.app.retries),
                    static_cast<unsigned long long>(r.juggler.app.duplicates_suppressed));
      }
      if (overload) {
        std::printf("    overload: %llu injected, %llu inject-drops, %llu exhausted, "
                    "%llu ring-drops, peak pool %llu, leaked %lld\n",
                    static_cast<unsigned long long>(r.juggler.overload.injected_packets),
                    static_cast<unsigned long long>(r.juggler.overload.inject_alloc_drops),
                    static_cast<unsigned long long>(r.juggler.overload_pool_exhausted),
                    static_cast<unsigned long long>(r.juggler.overload_ring_drops),
                    static_cast<unsigned long long>(r.juggler.overload_peak_pool),
                    static_cast<long long>(r.juggler.overload_pool_leaked));
      }
      if (shards >= 1) {
        std::printf("    shards: %zu workers, %llu windows, %llu crossings;",
                    r.juggler.shard_workers,
                    static_cast<unsigned long long>(r.juggler.shard_windows),
                    static_cast<unsigned long long>(r.juggler.shard_crossings));
        for (size_t d = 0; d < r.juggler.shard_names.size(); ++d) {
          std::printf(" %s=%llu", r.juggler.shard_names[d].c_str(),
                      static_cast<unsigned long long>(r.juggler.shard_events[d]));
        }
        std::printf(" events; barrier-wait");
        for (uint64_t ns : r.juggler.shard_barrier_wait_ns) {
          std::printf(" %.2fms", static_cast<double>(ns) / 1e6);
        }
        std::printf("; mailbox hwm=%zu overflow=%llu\n", r.juggler.shard_mailbox_hwm,
                    static_cast<unsigned long long>(r.juggler.shard_mailbox_overflows));
      }
      if (metrics) {
        std::printf("  metrics (%s, seed %llu, juggler engine):\n", FaultFamilyName(family),
                    static_cast<unsigned long long>(opt.seed));
        std::printf("%s", r.juggler.obs.metrics.ToTable().c_str());
      }
      if (!trace_path.empty()) {
        all_events.insert(all_events.end(), r.juggler.obs.events.begin(),
                          r.juggler.obs.events.end());
        trace_dropped += r.juggler.obs.trace_dropped;
      }
      if (!r.ok) {
        ++failures;
        for (const auto& res : {r.juggler, r.baseline}) {
          if (!res.completed) {
            std::printf("    %s: incomplete, %llu/%llu bytes\n", res.engine.c_str(),
                        static_cast<unsigned long long>(res.bytes_delivered),
                        static_cast<unsigned long long>(bytes));
          }
          for (const std::string& m : res.violation_messages) {
            std::printf("    %s: %s\n", res.engine.c_str(), m.c_str());
          }
        }
        if (!r.streams_match) {
          std::printf("    stream mismatch: juggler %llu vs baseline %llu bytes\n",
                      static_cast<unsigned long long>(r.juggler.bytes_delivered),
                      static_cast<unsigned long long>(r.baseline.bytes_delivered));
        }
      }
    }
  }

  if (!trace_path.empty()) {
    const Json trace = TraceToJson(all_events, trace_dropped, ChaosTraceNamer());
    std::string error;
    if (!WriteTraceFile(trace_path, trace, &error)) {
      std::fprintf(stderr, "trace write failed: %s\n", error.c_str());
      return 2;
    }
    std::printf("\ntrace: %zu events (%llu dropped) -> %s\n", all_events.size(),
                static_cast<unsigned long long>(trace_dropped), trace_path.c_str());
  }

  std::printf("\n%s: %d failure(s)\n", failures == 0 ? "PASS" : "FAIL", failures);
  return failures == 0 ? 0 : 1;
}
