// Figure 20: fine-grained load balancing on the Figure 19 Clos.
//
// 4 server/client pairs exchange 1MB RPCs and 4 pairs exchange 150B RPCs,
// all-to-one within each pair over 8 long-lived TCP sessions, open-loop
// Poisson arrivals. Total offered load on the two 40G uplinks sweeps
// 25..90%. Receivers run Juggler; the ToR uplink balancing policy is
// per-flow ECMP, per-TSO (Presto-style flowcells), or per-packet.
//
// Expected shape: per-packet achieves the lowest 99th-percentile completion
// times at high load — at least ~2x better than ECMP for small RPCs beyond
// 50% load, and visibly better than per-TSO at 75-90%.

#include <memory>

#include "bench/bench_common.h"

namespace juggler {
namespace {

struct LoadResult {
  double large_p99_ms = 0;
  double small_p99_us = 0;
  double small_p50_us = 0;
};

LoadResult RunOnce(LbPolicy lb, double load) {
  SimWorld world;
  ClosOptions opt;
  opt.hosts_per_tor = 8;
  opt.lb = lb;
  opt.host_template = DefaultHost();
  opt.host_template.rx.num_queues = 8;
  opt.host_template.num_app_cores = 8;
  // 40G NICs moderate interrupts at tens of microseconds (the 125us tau0
  // belongs to the paper's 10G NetFPGA testbed); lower moderation keeps RTT
  // small so per-connection service stays fast at high load.
  opt.host_template.rx.int_coalesce = Us(20);
  JugglerConfig jcfg;
  jcfg.inseq_timeout = Us(13);
  jcfg.ofo_timeout = Us(300);
  opt.host_template.gro_factory = MakeJugglerFactory(jcfg);
  // Datacenter RTO bounds: a single unlucky startup loss must not park a
  // connection in 100ms-scale backoff and dominate the open-loop tail.
  opt.host_template.tcp.initial_rto = Ms(10);
  opt.host_template.tcp.max_rto = Ms(16);
  ClosTestbed t = BuildClos(&world, opt);

  const TimeNs horizon = Ms(400);
  const TimeNs warmup = Ms(30);

  // Streams: hosts 0-3 large (1MB), hosts 4-7 small (150B), 8 sessions per
  // pair, server i -> client i.
  PercentileSampler large_lat;
  PercentileSampler small_lat;
  std::vector<std::unique_ptr<MessageStream>> streams;
  std::vector<std::unique_ptr<OpenLoopRpcGenerator>> generators;

  const double small_bps_per_server = 100e6;  // 100Mb/s of 150B RPCs each
  const double total_bps = load * 80e9;
  const double large_bps_per_server = (total_bps - 4 * small_bps_per_server) / 4.0;

  for (size_t h = 0; h < 8; ++h) {
    const bool large = h < 4;
    std::vector<MessageStream*> pair_streams;
    for (uint16_t c = 0; c < 8; ++c) {
      EndpointPair pair = ConnectHosts(t.left_hosts[h], t.right_hosts[h],
                                       static_cast<uint16_t>(1000 + c), 2000);
      streams.push_back(std::make_unique<MessageStream>(&world.loop, pair.a_to_b, pair.b_to_a,
                                                        large ? &large_lat : &small_lat));
      pair_streams.push_back(streams.back().get());
    }
    RpcGeneratorConfig gcfg;
    gcfg.message_bytes = large ? 1'000'000 : 150;
    const double bps = large ? large_bps_per_server : small_bps_per_server;
    gcfg.messages_per_sec = bps / (static_cast<double>(gcfg.message_bytes) * 8.0);
    gcfg.stop_time = horizon;
    gcfg.seed = 1000 + h;
    generators.push_back(
        std::make_unique<OpenLoopRpcGenerator>(&world.loop, gcfg, pair_streams));
  }

  world.loop.RunUntil(warmup);
  large_lat.Clear();
  small_lat.Clear();
  for (auto& gen : generators) {
    gen->Start();
  }
  world.loop.RunUntil(horizon + Ms(20));

  LoadResult r;
  r.large_p99_ms = large_lat.Percentile(99) / 1000.0;
  r.small_p99_us = small_lat.Percentile(99);
  r.small_p50_us = small_lat.Percentile(50);
  return r;
}

}  // namespace
}  // namespace juggler

int main() {
  using namespace juggler;
  PrintHeader("Figure 20",
              "RPC 99th-percentile completion time vs load, for per-flow ECMP,\n"
              "per-TSO and per-packet load balancing (Juggler receivers).\n"
              "Expected: per-packet wins at high load; >= 2x better small-RPC tail\n"
              "than ECMP beyond 50% load; beats per-TSO at 75-90%.");

  const LbPolicy policies[] = {LbPolicy::kEcmp, LbPolicy::kPerTso, LbPolicy::kPerPacket};
  const double loads[] = {0.25, 0.50, 0.75, 0.90};

  TablePrinter large({"load(%)", "ECMP p99(ms)", "per-TSO p99(ms)", "per-packet p99(ms)"});
  TablePrinter small({"load(%)", "ECMP p99(us)", "per-TSO p99(us)", "per-packet p99(us)"});
  for (double load : loads) {
    std::vector<std::string> lrow{TablePrinter::Num(load * 100, 0)};
    std::vector<std::string> srow{TablePrinter::Num(load * 100, 0)};
    for (LbPolicy lb : policies) {
      const LoadResult r = RunOnce(lb, load);
      lrow.push_back(TablePrinter::Num(r.large_p99_ms, 2));
      srow.push_back(TablePrinter::Num(r.small_p99_us, 0));
    }
    large.AddRow(std::move(lrow));
    small.AddRow(std::move(srow));
  }
  std::printf("Large (1MB) all-to-all RPC, 99th percentile completion time:\n");
  large.Print();
  std::printf("\nSmall (150B) all-to-all RPC, 99th percentile completion time:\n");
  small.Print();
  return 0;
}
