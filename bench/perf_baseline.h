// Recorded hot-path baseline for bench/perf_core. Regenerate with
//   perf_core --print-baseline-header > bench/perf_baseline.h
// and note the commit it was measured at.
//
// Two eras are recorded. The PRIMARY constants are the gate: the hot-path
// overhaul (hierarchical timer wheel, batched NIC->GRO->TCP dispatch,
// open-addressing flow tables, packet-pool zero-image reset), measured atop
// commit e5ea1e9 on the same box as the heap era, RelWithDebInfo, best of 3
// full-size runs, old and new binaries interleaved round-by-round to cancel
// frequency drift. The box thermal-throttles 20-40% under sustained bench
// load, so these are sustained-load numbers (recorded after several minutes
// of continuous benching, not a cold-turbo first run) and gate tolerances
// must leave headroom for that swing. Ratchet vs the pre-overhaul binary
// measured in the same interleaved session: timer churn 132.8M vs 74.9M
// ops/sec (1.77x, target >= 1.5x), GRO datapath 73.2M vs 39.2M pkts/sec
// (1.87x, target >= 1.3x). The event-chain rate is ~15% below the
// pre-overhaul binary (31.8M vs 37.4M): immediately-fired events now pay one
// staging hop before the due heap, the deliberate trade that makes
// schedule/cancel churn O(1) — recorded as measured, not cherry-picked.
//
// The kHeapEra* constants keep the original commit-bb7f1e8 numbers
// (pre-overhaul seed: one heap allocation per MTU, std::function timer
// callbacks, unordered_set timer-id tracking, std::function GRO context) so
// gate failures can show the whole trajectory.

#ifndef JUGGLER_BENCH_PERF_BASELINE_H_
#define JUGGLER_BENCH_PERF_BASELINE_H_

namespace juggler::perf_baseline {

inline constexpr char kCommit[] = "e5ea1e9+overhaul";
inline constexpr double kEventLoopEventsPerSec = 31785582.0;
inline constexpr double kTimerChurnOpsPerSec = 132849976.0;
inline constexpr double kGroDatapathPacketsPerSec = 73203946.0;

// Heap-era reference (binary-heap timers, per-packet dispatch, per-MTU heap
// allocation), measured at commit bb7f1e8 on this same box.
inline constexpr char kHeapEraCommit[] = "bb7f1e8";
inline constexpr double kHeapEraEventLoopEventsPerSec = 14268317.0;
inline constexpr double kHeapEraTimerChurnOpsPerSec = 18594931.0;
inline constexpr double kHeapEraGroDatapathPacketsPerSec = 19435172.0;

// bench/perf_fabric reference: 32-host Clos bulk transfer at ONE worker on
// the sharded engine, measured at commit d6524ca's successor (the commit
// that introduced the bench — there is no pre-sharding number for a bench
// of the sharded engine). Release+LTO, 1-hardware-thread machine, so the
// recorded scaling curve is flat; remeasure the curve on a multi-core box.
inline constexpr double kFabricClosPacketsPerSec = 1046273.0;

}  // namespace juggler::perf_baseline

#endif  // JUGGLER_BENCH_PERF_BASELINE_H_
