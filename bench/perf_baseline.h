// Recorded hot-path baseline for bench/perf_core. Regenerate with
//   perf_core --print-baseline-header > bench/perf_baseline.h
// and note the commit it was measured at.
//
// These numbers were measured at commit bb7f1e8 (pre-overhaul seed: one heap
// allocation per MTU, std::function timer callbacks, unordered_set timer-id
// tracking, std::function GRO context), RelWithDebInfo, best of 3 runs.

#ifndef JUGGLER_BENCH_PERF_BASELINE_H_
#define JUGGLER_BENCH_PERF_BASELINE_H_

namespace juggler::perf_baseline {

inline constexpr char kCommit[] = "bb7f1e8";
inline constexpr double kEventLoopEventsPerSec = 14268317.0;
inline constexpr double kTimerChurnOpsPerSec = 18594931.0;
inline constexpr double kGroDatapathPacketsPerSec = 19435172.0;

// bench/perf_fabric reference: 32-host Clos bulk transfer at ONE worker on
// the sharded engine, measured at commit d6524ca's successor (the commit
// that introduced the bench — there is no pre-sharding number for a bench
// of the sharded engine). Release+LTO, 1-hardware-thread machine, so the
// recorded scaling curve is flat; remeasure the curve on a multi-core box.
inline constexpr double kFabricClosPacketsPerSec = 1046273.0;

}  // namespace juggler::perf_baseline

#endif  // JUGGLER_BENCH_PERF_BASELINE_H_
