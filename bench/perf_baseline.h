// Recorded hot-path baseline for bench/perf_core. Regenerate with
//   cmake --build build --target bench-record
// (or perf_core --baseline-header bench/perf_baseline.h --commit <sha>)
// and note the commit it was measured at.

#ifndef JUGGLER_BENCH_PERF_BASELINE_H_
#define JUGGLER_BENCH_PERF_BASELINE_H_

namespace juggler::perf_baseline {

inline constexpr char kCommit[] = "cee11c3";
inline constexpr double kEventLoopEventsPerSec = 47068459.3;
inline constexpr double kTimerChurnOpsPerSec = 125491735.4;
inline constexpr double kGroDatapathPacketsPerSec = 70407684.6;

// Heap-era reference (binary-heap timers, per-packet dispatch,
// per-MTU heap allocation), measured at commit bb7f1e8.
inline constexpr char kHeapEraCommit[] = "bb7f1e8";
inline constexpr double kHeapEraEventLoopEventsPerSec = 14268317.0;
inline constexpr double kHeapEraTimerChurnOpsPerSec = 18594931.0;
inline constexpr double kHeapEraGroDatapathPacketsPerSec = 19435172.0;

// bench/perf_fabric reference: 32-host Clos bulk transfer at ONE
// worker on the sharded engine.
inline constexpr double kFabricClosPacketsPerSec = 1046273.0;

}  // namespace juggler::perf_baseline

#endif  // JUGGLER_BENCH_PERF_BASELINE_H_
