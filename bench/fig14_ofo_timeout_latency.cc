// Figure 14: tail RPC latency vs ofo_timeout under packet loss.
//
// Setup: the server sends 10KB RPC messages to the client through the
// NetFPGA switch (tau = 250/500/750us reordering); the client drops 0.1% of
// packets before they enter Juggler. Sweep ofo_timeout and report the 99th
// percentile RPC completion time.
//
// Expected shape: flat while ofo_timeout is small, then growing rapidly once
// ofo_timeout exceeds ~tau - tau0 — a large ofo_timeout delays the moment
// TCP sees the hole from a real loss, postponing fast retransmit.
//
// Also reproduces the §5.2.1 remark: with 0.1% loss, *throughput* only
// collapses when ofo_timeout reaches ~100ms (printed as a second table).

#include "bench/bench_common.h"

namespace juggler {
namespace {

struct Result {
  double p99_ms = 0;
  double median_ms = 0;
  double gbps = 0;
};

Result RunOnce(TimeNs reorder, TimeNs ofo_timeout, bool bulk) {
  SimWorld world;
  NetFpgaOptions opt;
  opt.link_rate_bps = 10 * kGbps;
  opt.reorder_delay = reorder;
  opt.drop_prob = 0.001;
  opt.sender = DefaultHost();
  opt.receiver = DefaultHost();
  JugglerConfig jcfg;
  jcfg.inseq_timeout = Us(52);
  jcfg.ofo_timeout = ofo_timeout;
  opt.receiver.gro_factory = MakeJugglerFactory(jcfg);
  // Datacenter-style RTO bounds, so one unlucky loss does not back off into
  // hundreds of milliseconds and swamp the open-loop tail.
  opt.sender.tcp.max_rto = Ms(16);
  opt.receiver.tcp.max_rto = Ms(16);
  NetFpgaTestbed t = BuildNetFpga(&world, opt);

  Result r;
  if (bulk) {
    EndpointPair pair = ConnectHosts(t.sender, t.receiver, 1000, 2000);
    pair.a_to_b->SendForever();
    world.loop.RunUntil(Ms(50));
    GoodputMeter goodput(pair.b_to_a);
    goodput.Reset();
    world.loop.RunUntil(Ms(250));
    r.gbps = goodput.Gbps(Ms(200));
    return r;
  }

  // Open-loop 10KB RPCs multiplexed over 8 connections at a moderate
  // aggregate (~0.5Gb/s) so queueing stays mild and per-RPC loss-recovery
  // latency dominates the tail.
  PercentileSampler latency_us;
  std::vector<std::unique_ptr<MessageStream>> streams;
  std::vector<MessageStream*> raw;
  for (uint16_t c = 0; c < 8; ++c) {
    EndpointPair pair =
        ConnectHosts(t.sender, t.receiver, static_cast<uint16_t>(1000 + c), 2000);
    streams.push_back(
        std::make_unique<MessageStream>(&world.loop, pair.a_to_b, pair.b_to_a, &latency_us));
    raw.push_back(streams.back().get());
  }
  RpcGeneratorConfig gcfg;
  gcfg.message_bytes = 10'000;
  gcfg.messages_per_sec = 6'000;
  gcfg.stop_time = Ms(500);
  gcfg.seed = 17;
  OpenLoopRpcGenerator gen(&world.loop, gcfg, raw);
  gen.Start();
  world.loop.RunUntil(Ms(550));
  r.p99_ms = latency_us.Percentile(99) / 1000.0;
  r.median_ms = latency_us.Percentile(50) / 1000.0;
  return r;
}

}  // namespace
}  // namespace juggler

int main() {
  using namespace juggler;
  PrintHeader("Figure 14",
              "99th-percentile 10KB RPC completion time vs ofo_timeout, with 0.1%\n"
              "receiver-side drops and 250/500/750us reordering. Tail should stay\n"
              "flat until ofo_timeout ~ tau - tau0, then grow.");

  const TimeNs reorders[] = {Us(250), Us(500), Us(750)};
  const TimeNs ofos[] = {Us(50),  Us(100), Us(200), Us(400),
                         Us(600), Us(800), Us(1000)};
  TablePrinter table({"ofo_timeout(us)", "p99@250us(ms)", "p99@500us(ms)", "p99@750us(ms)"});
  for (TimeNs ofo : ofos) {
    std::vector<std::string> row{TablePrinter::Num(ToUs(ofo), 0)};
    for (TimeNs reorder : reorders) {
      row.push_back(TablePrinter::Num(RunOnce(reorder, ofo, /*bulk=*/false).p99_ms, 2));
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  PrintHeader("§5.2.1 remark",
              "Bulk throughput at 0.1% loss vs very large ofo_timeout (250us\n"
              "reordering): throughput is far less sensitive than latency and only\n"
              "collapses at ~100ms.");
  TablePrinter tput({"ofo_timeout", "throughput(Gb/s)"});
  const TimeNs big_ofos[] = {Us(200), Ms(1), Ms(10), Ms(50), Ms(100), Ms(200)};
  for (TimeNs ofo : big_ofos) {
    const Result r = RunOnce(Us(250), ofo, /*bulk=*/true);
    const std::string label = ofo >= Ms(1) ? TablePrinter::Num(ToMs(ofo), 0) + "ms"
                                           : TablePrinter::Num(ToUs(ofo), 0) + "us";
    tput.AddRow({label, TablePrinter::Num(r.gbps, 2)});
  }
  tput.Print();
  return 0;
}
