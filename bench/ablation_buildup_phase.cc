// Remark 1 ablation (§4.2.2): the build-up phase lets seq_next move
// backwards while Juggler re-learns a flow it evicted, instead of pinning
// seq_next to the (likely out-of-order) first packet and flushing the rest
// of the arrival burst up the stack unmerged.
//
// The paper reports ~6% fewer segments sent up the stack with the build-up
// phase enabled, in a single-flow experiment with reordering. We recreate
// it with a small gro_table so the flow is evicted and re-enters often.

#include "bench/bench_common.h"

namespace juggler {
namespace {

struct Result {
  uint64_t segments = 0;
  uint64_t backward_moves = 0;
  double gbps = 0;
};

Result RunOnce(bool enable_buildup) {
  SimWorld world;
  NetFpgaOptions opt;
  opt.link_rate_bps = 10 * kGbps;
  opt.reorder_delay = Us(250);
  opt.sender = DefaultHost();
  opt.receiver = DefaultHost();
  JugglerConfig jcfg = TunedJuggler(10 * kGbps, Us(250));
  jcfg.enable_buildup_phase = enable_buildup;
  jcfg.max_flows = 1;  // eviction churn: interleaved second flow below
  opt.receiver.gro_factory = MakeJugglerFactory(jcfg);
  NetFpgaTestbed t = BuildNetFpga(&world, opt);

  // Two flows sharing the table of size 1: every switch between them evicts
  // and re-enters, exercising the build-up path continuously.
  EndpointPair f1 = ConnectHosts(t.sender, t.receiver, 1000, 2000);
  EndpointPair f2 = ConnectHosts(t.sender, t.receiver, 1001, 2000);
  f1.a_to_b->SendForever();
  f2.a_to_b->SendForever();

  world.loop.RunUntil(Ms(30));
  const GroStats before = t.receiver->nic_rx()->TotalGroStats();
  GoodputMeter g1(f1.b_to_a);
  GoodputMeter g2(f2.b_to_a);
  g1.Reset();
  g2.Reset();
  world.loop.RunUntil(Ms(130));
  const GroStats after = t.receiver->nic_rx()->TotalGroStats();

  Result r;
  r.segments = after.data_segments_out - before.data_segments_out;
  r.backward_moves =
      static_cast<const Juggler*>(t.receiver->nic_rx()->gro(0))->juggler_stats()
          .seq_next_backward_moves;
  r.gbps = g1.Gbps(Ms(100)) + g2.Gbps(Ms(100));
  return r;
}

}  // namespace
}  // namespace juggler

int main() {
  using namespace juggler;
  PrintHeader("Remark 1 ablation: build-up phase",
              "Flows repeatedly evicted and re-entering under 250us reordering.\n"
              "Expected: with the build-up phase, fewer segments go up the stack\n"
              "(paper: ~6% fewer) at the same throughput.");
  const Result with = RunOnce(true);
  const Result without = RunOnce(false);
  TablePrinter table({"variant", "segments to TCP", "seq_next backward moves",
                      "throughput(Gb/s)"});
  table.AddRow({"build-up enabled", std::to_string(with.segments),
                std::to_string(with.backward_moves), TablePrinter::Num(with.gbps, 2)});
  table.AddRow({"build-up disabled", std::to_string(without.segments),
                std::to_string(without.backward_moves), TablePrinter::Num(without.gbps, 2)});
  table.Print();
  const double reduction = without.segments == 0
                               ? 0.0
                               : 100.0 * (1.0 - static_cast<double>(with.segments) /
                                                    static_cast<double>(without.segments));
  std::printf("segment reduction from build-up phase: %.1f%% (paper: ~6%%)\n", reduction);
  return 0;
}
