// Application-resilience soak: the app layer's acceptance run.
//
// The full stack matrix — {juggler, vanilla, presto} receive paths x
// {rpc, bulk-transfer, incast, replication} workloads — under mixed fault
// pressure, 8 seeds per cell. Every cell must end with zero auditor
// violations and zero hung requests: whatever the reordering/fault regime
// does to the wire, every issued request reaches an explicit Ok / Timeout /
// Aborted outcome and the server executes each logical request effectively
// once. A second pass pins determinism: same (stack, workload, seed) twice,
// bit-identical digests, with the retry machinery demonstrably engaged
// (link flaps against a short attempt timeout).
//
// Cells are independent, so they run on the parallel sweep runner; results
// aggregate in sequential order, byte-identical to a sequential loop.

#include "bench/bench_common.h"
#include "src/scenario/chaos_scenario.h"
#include "src/sim/sweep_runner.h"

namespace juggler {
namespace {

constexpr int kSeeds = 8;

const StackKind kStacks[] = {StackKind::kJuggler, StackKind::kVanilla, StackKind::kPresto};
const AppWorkloadKind kWorkloads[] = {
    AppWorkloadKind::kRpc,
    AppWorkloadKind::kBulkTransfer,
    AppWorkloadKind::kIncast,
    AppWorkloadKind::kReplication,
};
constexpr size_t kNumStacks = sizeof(kStacks) / sizeof(kStacks[0]);
constexpr size_t kNumWorkloads = sizeof(kWorkloads) / sizeof(kWorkloads[0]);

AppWorkloadOptions Workload(AppWorkloadKind kind) {
  AppWorkloadOptions app;
  app.kind = kind;
  app.sessions = kind == AppWorkloadKind::kReplication ? 3 : 2;
  app.requests_per_session = 6;
  app.response_bytes = 12'288;
  app.chunk_bytes = 49'152;
  app.transfer_bytes_per_session = 3 * app.chunk_bytes;
  return app;
}

int Run() {
  PrintHeader("app resilience soak",
              "3 stacks x 4 app workloads x 8 seeds under mixed faults; oracle:\n"
              "zero auditor violations, zero hung requests, every request at an\n"
              "explicit terminal outcome; then determinism under forced retries");

  std::printf("%-8s %-14s %6s %8s %8s %8s %8s %8s %8s %10s\n", "stack", "workload", "runs",
              "issued", "ok", "timeout", "aborted", "retries", "dedup", "violations");

  // One point per (stack, workload, seed), stack-major then workload-major,
  // so aggregation walks results in table order.
  const size_t total = kNumStacks * kNumWorkloads * kSeeds;
  const std::vector<ChaosEngineResult> results = RunSweep(total, [](size_t i) {
    ChaosOptions opt;
    opt.seed = 1 + static_cast<uint64_t>(i % kSeeds);
    opt.family = FaultFamily::kMixed;
    opt.app = Workload(kWorkloads[(i / kSeeds) % kNumWorkloads]);
    return RunChaosEngineStack(opt, kStacks[i / (kSeeds * kNumWorkloads)]);
  });

  int failures = 0;
  for (size_t st = 0; st < kNumStacks; ++st) {
    for (size_t w = 0; w < kNumWorkloads; ++w) {
      AppStats agg;
      uint64_t violations = 0;
      for (int s = 0; s < kSeeds; ++s) {
        const ChaosEngineResult& r = results[(st * kNumWorkloads + w) * kSeeds + s];
        agg.MergeFrom(r.app);
        violations += r.violations;
        if (r.violations != 0 || !r.completed || r.app.forced_terminal != 0) {
          ++failures;
          std::printf("  FAIL %s/%s seed=%d: %s\n", StackKindName(kStacks[st]),
                      AppWorkloadKindName(kWorkloads[w]), 1 + s,
                      r.violation_messages.empty() ? "hung requests"
                                                   : r.violation_messages.front().c_str());
        }
      }
      std::printf("%-8s %-14s %6d %8llu %8llu %8llu %8llu %8llu %8llu %10llu\n",
                  StackKindName(kStacks[st]), AppWorkloadKindName(kWorkloads[w]), kSeeds,
                  static_cast<unsigned long long>(agg.issued),
                  static_cast<unsigned long long>(agg.ok),
                  static_cast<unsigned long long>(agg.timeouts),
                  static_cast<unsigned long long>(agg.aborted),
                  static_cast<unsigned long long>(agg.retries),
                  static_cast<unsigned long long>(agg.duplicates_suppressed),
                  static_cast<unsigned long long>(violations));
    }
  }

  std::printf("\ndeterminism under forced retries: link flaps vs a 2ms attempt\n"
              "timeout, same run twice, digests must match and retries must fire\n");
  std::printf("%-14s %18s %18s %8s  %s\n", "workload", "digest_run1", "digest_run2", "retries",
              "match");
  struct Pair {
    ChaosEngineResult r1;
    ChaosEngineResult r2;
  };
  const std::vector<Pair> pairs = RunSweep(kNumWorkloads, [](size_t w) {
    ChaosOptions opt;
    opt.seed = 7;
    opt.family = FaultFamily::kLinkFlap;
    opt.app = Workload(kWorkloads[w]);
    opt.app.retry.attempt_timeout = Ms(2);
    Pair pair;
    pair.r1 = RunChaosEngineStack(opt, StackKind::kJuggler);
    pair.r2 = RunChaosEngineStack(opt, StackKind::kJuggler);
    return pair;
  });
  uint64_t total_retries = 0;
  for (size_t w = 0; w < kNumWorkloads; ++w) {
    const Pair& pair = pairs[w];
    const bool match = pair.r1.digest == pair.r2.digest;
    if (!match) {
      ++failures;
    }
    total_retries += pair.r1.app.retries;
    std::printf("%-14s %018llx %018llx %8llu  %s\n", AppWorkloadKindName(kWorkloads[w]),
                static_cast<unsigned long long>(pair.r1.digest),
                static_cast<unsigned long long>(pair.r2.digest),
                static_cast<unsigned long long>(pair.r1.app.retries), match ? "yes" : "NO");
  }
  if (total_retries == 0) {
    // Retries never firing would make the matrix vacuous.
    std::printf("  FAIL: no retries across the forced-retry pass\n");
    ++failures;
  }

  std::printf("\n%s\n", failures == 0 ? "PASS" : "FAIL");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace juggler

int main() { return juggler::Run(); }
