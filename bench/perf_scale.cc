// perf_scale: flow-count scaling of the GRO datapath, with tracked output.
//
// perf_core measures the single-flow fast path; this bench answers the
// orthogonal question the flow-table rebuild was aimed at — what happens
// when the table is big. For each flow population (10k and 100k; smaller in
// --smoke) it drives in-order traffic round-robin across every flow in
// NAPI-budget poll rounds (the worst realistic locality: every packet is a
// different flow, so every lookup starts cold) and reports
//
//   * packets/sec through Juggler at that population, and
//   * resident bytes per flow: the flow table's own memory (slot array +
//     record slabs) divided by the population — the §3.3 memory-exhaustion
//     number, now for an engine that actually bounds it.
//
// Results append to BENCH_core.json as a "flow_scale" section (the existing
// perf_core sections are preserved), so one file still tells the whole
// perf story.
//
// Modes:
//   perf_scale [--smoke] [--out PATH]   run, merge into BENCH_core.json

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/juggler.h"
#include "src/packet/packet.h"
#include "src/util/json.h"
#include "src/util/time.h"

namespace juggler {
namespace {

double Seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

struct BenchGroHost : GroHost {
  std::vector<Segment> delivered;
  TimeNs armed = GroEngine::kNoTimer;

  void GroDeliver(Segment s) override { delivered.push_back(std::move(s)); }
  void GroArmTimer(TimeNs when) override { armed = when; }
};

struct ScalePoint {
  size_t flows = 0;
  double packets_per_sec = 0;
  double bytes_per_flow = 0;
};

ScalePoint MeasureAtFlowCount(size_t flows, uint64_t total_packets) {
  CpuCostModel costs;
  JugglerConfig config;
  config.max_flows = flows;  // population fits: no eviction mid-measurement
  Juggler engine(&costs, config);

  TimeNs now = 0;
  BenchGroHost host;
  GroEngine::Context ctx;
  ctx.now = &now;
  ctx.host = &host;
  engine.set_context(ctx);

  // Distinct five-tuples spread across source addresses and ports, plus the
  // per-flow next sequence number, kept in flow order for the round-robin.
  std::vector<FiveTuple> tuples(flows);
  std::vector<Seq> next_seq(flows, 0);
  for (size_t i = 0; i < flows; ++i) {
    tuples[i].src_ip = 0x0a000000u + static_cast<uint32_t>(i / 40'000);
    tuples[i].dst_ip = 0x0a800001;
    tuples[i].src_port = static_cast<uint16_t>(1024 + i % 40'000);
    tuples[i].dst_port = 443;
  }

  PacketFactory factory;
  constexpr uint64_t kBudget = 64;  // NAPI budget per poll round
  std::vector<PacketPtr> batch;
  batch.reserve(kBudget);

  size_t cursor = 0;
  uint64_t done = 0;
  const auto t0 = std::chrono::steady_clock::now();
  while (done < total_packets) {
    batch.clear();
    for (uint64_t j = 0; j < kBudget; ++j) {
      const size_t f = cursor;
      cursor = cursor + 1 == flows ? 0 : cursor + 1;
      PacketPtr p = factory.Make();
      p->flow = tuples[f];
      p->seq = next_seq[f];
      p->payload_len = kMss;
      p->flags = kFlagAck;
      p->nic_rx_time = now;
      next_seq[f] += kMss;
      batch.push_back(std::move(p));
    }
    engine.ReceiveBatch(batch.data(), batch.size());
    done += kBudget;
    engine.PollComplete();
    now += Us(5);
    if (host.armed != GroEngine::kNoTimer && host.armed <= now) {
      host.armed = GroEngine::kNoTimer;
      engine.OnTimer();
    }
    host.delivered.clear();
  }
  const double secs = Seconds(std::chrono::steady_clock::now() - t0);

  ScalePoint point;
  point.flows = flows;
  point.packets_per_sec = static_cast<double>(done) / secs;
  point.bytes_per_flow = static_cast<double>(engine.flow_table_resident_bytes()) /
                         static_cast<double>(engine.flow_table_size());
  return point;
}

// Merges the measured points into `path` under a "flow_scale" key. The rest
// of the document (perf_core's sections) is preserved; a missing or
// malformed file becomes a fresh object so the bench works standalone.
bool MergeIntoJson(const std::vector<ScalePoint>& points, const std::string& path) {
  Json doc = Json::Object();
  {
    std::ifstream in(path);
    if (in) {
      std::stringstream ss;
      ss << in.rdbuf();
      std::string error;
      if (!Json::Parse(ss.str(), &doc, &error)) {
        std::fprintf(stderr, "perf_scale: %s unparseable (%s), rewriting\n", path.c_str(),
                     error.c_str());
        doc = Json::Object();
      }
    }
  }
  if (doc.Find("bench") == nullptr) {
    doc.Set("bench", Json::Str("perf_core"));
  }
  Json scale = Json::Array();
  for (const ScalePoint& p : points) {
    Json entry = Json::Object();
    entry.Set("flows", Json::Uint(p.flows));
    entry.Set("packets_per_sec", Json::Double(p.packets_per_sec));
    entry.Set("resident_bytes_per_flow", Json::Double(p.bytes_per_flow));
    scale.Push(std::move(entry));
  }
  doc.Set("flow_scale", std::move(scale));
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "perf_scale: cannot write %s\n", path.c_str());
    return false;
  }
  out << doc.Dump(2) << "\n";
  return true;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_core.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: perf_scale [--smoke] [--out PATH]\n");
      return 2;
    }
  }

  const std::vector<size_t> populations =
      smoke ? std::vector<size_t>{1'000, 10'000} : std::vector<size_t>{10'000, 100'000};
  const int reps = smoke ? 1 : 3;

  std::printf("=== perf_scale ===\n%s\n\n",
              smoke ? "(smoke sizes)" : "(full sizes, best of 3)");
  std::printf("%12s %18s %22s\n", "flows", "packets/sec", "resident bytes/flow");

  std::vector<ScalePoint> points;
  for (size_t flows : populations) {
    // Enough rounds that every flow is touched repeatedly once the table is
    // fully populated (at least ~8 packets per flow, floor of 512k total).
    const uint64_t total = std::max<uint64_t>(8 * flows, smoke ? 128'000 : 512'000);
    ScalePoint best;
    for (int r = 0; r < reps; ++r) {
      const ScalePoint cur = MeasureAtFlowCount(flows, total);
      if (cur.packets_per_sec > best.packets_per_sec) {
        best = cur;
      }
    }
    std::printf("%12zu %18.0f %22.1f\n", best.flows, best.packets_per_sec,
                best.bytes_per_flow);
    points.push_back(best);
  }

  if (!MergeIntoJson(points, out_path)) {
    return 1;
  }
  std::printf("\nmerged flow_scale into %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace juggler

int main(int argc, char** argv) { return juggler::Main(argc, argv); }
