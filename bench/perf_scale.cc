// perf_scale: flow-count scaling of the GRO datapath and the TCP endpoint
// table, with tracked output.
//
// perf_core measures the single-flow fast path; this bench answers the
// orthogonal question the flow-table rebuild was aimed at — what happens
// when the table is big. For each flow population (10k / 100k / 1M; smaller
// in --smoke) it drives in-order traffic round-robin across every flow in
// NAPI-budget poll rounds (the worst realistic locality: every packet is a
// different flow, so every lookup starts cold) and reports
//
//   * packets/sec through Juggler at that population, and
//   * resident bytes per flow: the flow table's own memory (slot array +
//     record slabs) divided by the population — the §3.3 memory-exhaustion
//     number, now for an engine that actually bounds it.
//
// A second section does the same for TCP connection state: TcpEndpoint
// blocks live inline in FlowTable slabs (the Host arrangement), so the
// bench creates the population, measures slab bytes per connection, and
// times reversed-tuple demux lookups across the whole table.
//
// Results append to BENCH_core.json as "flow_scale" / "tcp_scale" sections
// (the existing perf_core sections are preserved), so one file still tells
// the whole perf story.
//
// Modes:
//   perf_scale [--smoke] [--gate] [--out PATH]
//
// --gate enforces the memory-scaling contract: bytes per flow (and per
// connection) at the largest population must stay within 1.2x of the figure
// one decade down. Exit 1 on violation.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/juggler.h"
#include "src/gro/flow_table.h"
#include "src/packet/packet.h"
#include "src/sim/event_loop.h"
#include "src/tcp/tcp_endpoint.h"
#include "src/util/json.h"
#include "src/util/time.h"

namespace juggler {
namespace {

double Seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

struct BenchGroHost : GroHost {
  std::vector<Segment> delivered;
  TimeNs armed = GroEngine::kNoTimer;

  void GroDeliver(Segment s) override { delivered.push_back(std::move(s)); }
  void GroArmTimer(TimeNs when) override { armed = when; }
};

// Distinct five-tuples spread across source addresses and ports, in flow
// order for round-robin drives.
std::vector<FiveTuple> MakeTuples(size_t flows) {
  std::vector<FiveTuple> tuples(flows);
  for (size_t i = 0; i < flows; ++i) {
    tuples[i].src_ip = 0x0a000000u + static_cast<uint32_t>(i / 40'000);
    tuples[i].dst_ip = 0x0a800001;
    tuples[i].src_port = static_cast<uint16_t>(1024 + i % 40'000);
    tuples[i].dst_port = 443;
  }
  return tuples;
}

struct ScalePoint {
  size_t flows = 0;
  double packets_per_sec = 0;
  double bytes_per_flow = 0;
};

ScalePoint MeasureAtFlowCount(size_t flows, uint64_t total_packets) {
  CpuCostModel costs;
  JugglerConfig config;
  config.max_flows = flows;  // population fits: no eviction mid-measurement
  Juggler engine(&costs, config);

  TimeNs now = 0;
  BenchGroHost host;
  GroEngine::Context ctx;
  ctx.now = &now;
  ctx.host = &host;
  engine.set_context(ctx);

  const std::vector<FiveTuple> tuples = MakeTuples(flows);
  std::vector<Seq> next_seq(flows, 0);

  PacketFactory factory;
  constexpr uint64_t kBudget = 64;  // NAPI budget per poll round
  std::vector<PacketPtr> batch;
  batch.reserve(kBudget);

  size_t cursor = 0;
  uint64_t done = 0;
  const auto t0 = std::chrono::steady_clock::now();
  while (done < total_packets) {
    batch.clear();
    for (uint64_t j = 0; j < kBudget; ++j) {
      const size_t f = cursor;
      cursor = cursor + 1 == flows ? 0 : cursor + 1;
      PacketPtr p = factory.Make();
      p->flow = tuples[f];
      p->seq = next_seq[f];
      p->payload_len = kMss;
      p->flags = kFlagAck;
      p->nic_rx_time = now;
      next_seq[f] += kMss;
      batch.push_back(std::move(p));
    }
    engine.ReceiveBatch(batch.data(), batch.size());
    done += kBudget;
    engine.PollComplete();
    now += Us(5);
    if (host.armed != GroEngine::kNoTimer && host.armed <= now) {
      host.armed = GroEngine::kNoTimer;
      engine.OnTimer();
    }
    host.delivered.clear();
  }
  const double secs = Seconds(std::chrono::steady_clock::now() - t0);

  ScalePoint point;
  point.flows = flows;
  point.packets_per_sec = static_cast<double>(done) / secs;
  point.bytes_per_flow = static_cast<double>(engine.flow_table_resident_bytes()) /
                         static_cast<double>(engine.flow_table_size());
  return point;
}

// ---- TCP endpoint table scaling ----

struct NullSink : PacketSink {
  void Accept(PacketPtr) override {}
};

struct TcpScalePoint {
  size_t connections = 0;
  double bytes_per_connection = 0;
  double lookups_per_sec = 0;
};

// Creates `connections` TcpEndpoints inline in a FlowTable slab — the Host
// arrangement — then measures slab bytes per connection and the demux
// lookup rate (reversed-tuple Find across the whole population, round
// robin: every lookup cold, like the GRO measurement above).
TcpScalePoint MeasureTcpAtConnCount(size_t connections, uint64_t total_lookups) {
  EventLoop loop;
  PacketFactory factory;
  NullSink sink;
  NicTx nic(&loop, &factory, NicTxConfig{}, &sink);
  TcpConfig tcp;

  const std::vector<FiveTuple> tuples = MakeTuples(connections);
  FlowTable<TcpEndpoint> table;
  for (const FiveTuple& local : tuples) {
    table.FindOrEmplace(local, &loop, tcp, local, &nic);
  }

  // Demux drill: inbound segments carry the peer's tuple, looked up
  // reversed — exercise exactly that access pattern.
  std::vector<FiveTuple> inbound(tuples.size());
  for (size_t i = 0; i < tuples.size(); ++i) {
    inbound[i] = tuples[i].Reversed();
  }
  uint64_t found = 0;
  size_t cursor = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < total_lookups; ++i) {
    found += table.Find(inbound[cursor].Reversed()) != nullptr;
    cursor = cursor + 1 == inbound.size() ? 0 : cursor + 1;
  }
  const double secs = Seconds(std::chrono::steady_clock::now() - t0);
  if (found != total_lookups) {
    std::fprintf(stderr, "perf_scale: tcp demux missed %llu lookups\n",
                 static_cast<unsigned long long>(total_lookups - found));
  }

  TcpScalePoint point;
  point.connections = connections;
  point.bytes_per_connection =
      static_cast<double>(table.resident_bytes()) / static_cast<double>(table.size());
  point.lookups_per_sec = static_cast<double>(total_lookups) / secs;
  return point;
}

// Merges the measured points into `path` under "flow_scale" / "tcp_scale"
// keys. The rest of the document (perf_core's sections) is preserved; a
// missing or malformed file becomes a fresh object so the bench works
// standalone.
bool MergeIntoJson(const std::vector<ScalePoint>& points,
                   const std::vector<TcpScalePoint>& tcp_points, const std::string& path) {
  Json doc = Json::Object();
  {
    std::ifstream in(path);
    if (in) {
      std::stringstream ss;
      ss << in.rdbuf();
      std::string error;
      if (!Json::Parse(ss.str(), &doc, &error)) {
        std::fprintf(stderr, "perf_scale: %s unparseable (%s), rewriting\n", path.c_str(),
                     error.c_str());
        doc = Json::Object();
      }
    }
  }
  if (doc.Find("bench") == nullptr) {
    doc.Set("bench", Json::Str("perf_core"));
  }
  Json scale = Json::Array();
  for (const ScalePoint& p : points) {
    Json entry = Json::Object();
    entry.Set("flows", Json::Uint(p.flows));
    entry.Set("packets_per_sec", Json::Double(p.packets_per_sec));
    entry.Set("resident_bytes_per_flow", Json::Double(p.bytes_per_flow));
    scale.Push(std::move(entry));
  }
  doc.Set("flow_scale", std::move(scale));
  Json tcp = Json::Array();
  for (const TcpScalePoint& p : tcp_points) {
    Json entry = Json::Object();
    entry.Set("connections", Json::Uint(p.connections));
    entry.Set("resident_bytes_per_connection", Json::Double(p.bytes_per_connection));
    entry.Set("demux_lookups_per_sec", Json::Double(p.lookups_per_sec));
    tcp.Push(std::move(entry));
  }
  doc.Set("tcp_scale", std::move(tcp));
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "perf_scale: cannot write %s\n", path.c_str());
    return false;
  }
  out << doc.Dump(2) << "\n";
  return true;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  bool gate = false;
  std::string out_path = "BENCH_core.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--gate") == 0) {
      gate = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: perf_scale [--smoke] [--gate] [--out PATH]\n");
      return 2;
    }
  }

  const std::vector<size_t> populations =
      smoke ? std::vector<size_t>{1'000, 10'000}
            : std::vector<size_t>{10'000, 100'000, 1'000'000};
  const int reps = smoke ? 1 : 3;

  std::printf("=== perf_scale ===\n%s\n\n",
              smoke ? "(smoke sizes)" : "(full sizes, best of 3)");
  std::printf("%12s %18s %22s\n", "flows", "packets/sec", "resident bytes/flow");

  std::vector<ScalePoint> points;
  for (size_t flows : populations) {
    // Enough rounds that every flow is touched repeatedly once the table is
    // fully populated (at least ~8 packets per flow, floor of 512k total).
    const uint64_t total = std::max<uint64_t>(8 * flows, smoke ? 128'000 : 512'000);
    ScalePoint best;
    for (int r = 0; r < reps; ++r) {
      const ScalePoint cur = MeasureAtFlowCount(flows, total);
      if (cur.packets_per_sec > best.packets_per_sec) {
        best = cur;
      }
    }
    std::printf("%12zu %18.0f %22.1f\n", best.flows, best.packets_per_sec,
                best.bytes_per_flow);
    points.push_back(best);
  }

  std::printf("\n%12s %22s %18s\n", "connections", "resident bytes/conn", "demux/sec");
  std::vector<TcpScalePoint> tcp_points;
  for (size_t conns : populations) {
    const uint64_t lookups = std::max<uint64_t>(2 * conns, smoke ? 128'000 : 512'000);
    TcpScalePoint best;
    for (int r = 0; r < reps; ++r) {
      const TcpScalePoint cur = MeasureTcpAtConnCount(conns, lookups);
      if (cur.lookups_per_sec > best.lookups_per_sec) {
        best = cur;
      }
    }
    std::printf("%12zu %22.1f %18.0f\n", best.connections, best.bytes_per_connection,
                best.lookups_per_sec);
    tcp_points.push_back(best);
  }

  if (!MergeIntoJson(points, tcp_points, out_path)) {
    return 1;
  }
  std::printf("\nmerged flow_scale + tcp_scale into %s\n", out_path.c_str());

  if (gate) {
    // Memory must stay flat across the top decade: the largest population's
    // per-entry figure within 1.2x of the previous point's.
    const ScalePoint& hi = points.back();
    const ScalePoint& mid = points[points.size() - 2];
    const TcpScalePoint& thi = tcp_points.back();
    const TcpScalePoint& tmid = tcp_points[tcp_points.size() - 2];
    bool ok = true;
    if (hi.bytes_per_flow > 1.2 * mid.bytes_per_flow) {
      std::fprintf(stderr,
                   "GATE FAIL: bytes/flow grew %zu->%zu flows: %.1f -> %.1f (>1.2x)\n",
                   mid.flows, hi.flows, mid.bytes_per_flow, hi.bytes_per_flow);
      ok = false;
    }
    if (thi.bytes_per_connection > 1.2 * tmid.bytes_per_connection) {
      std::fprintf(stderr,
                   "GATE FAIL: bytes/conn grew %zu->%zu conns: %.1f -> %.1f (>1.2x)\n",
                   tmid.connections, thi.connections, tmid.bytes_per_connection,
                   thi.bytes_per_connection);
      ok = false;
    }
    if (!ok) {
      return 1;
    }
    std::printf("gate: memory flat to %zu flows (<=1.2x per decade)\n", hi.flows);
  }
  return 0;
}

}  // namespace
}  // namespace juggler

int main(int argc, char** argv) { return juggler::Main(argc, argv); }
