// Shared setup for the bandwidth-guarantee experiments (Figures 1, 17, 18):
// the two-priority dumbbell with one target flow (sender1 -> receiver1) and
// 7 antagonist flows (sender2 -> receiver2) competing for a 40Gb/s
// interconnect. The target flow's packets are marked high-priority with
// probability p, adapted by the Eq. (1) controller.

#ifndef JUGGLER_BENCH_GUARANTEE_COMMON_H_
#define JUGGLER_BENCH_GUARANTEE_COMMON_H_

#include <memory>
#include <vector>

#include "bench/bench_common.h"

namespace juggler {

struct GuaranteeRig {
  SimWorld world;
  DumbbellTestbed testbed;
  EndpointPair target;
  std::vector<EndpointPair> antagonists;
  std::unique_ptr<PriorityController> controller;
};

inline std::unique_ptr<GuaranteeRig> BuildGuaranteeRig(bool use_juggler, uint64_t seed) {
  auto rig = std::make_unique<GuaranteeRig>();
  DumbbellOptions opt;
  opt.host_template = DefaultHost();
  // The paper's hosts spread flows across RX queues and cores; a single
  // flow is still bounded by one core (the ~25Gb/s ceiling of Fig. 18).
  opt.host_template.rx.num_queues = 8;
  opt.host_template.num_app_cores = 8;
  if (use_juggler) {
    JugglerConfig jcfg;
    jcfg.inseq_timeout = Us(13);
    // Expected reordering = the low-priority queue depth (~800us at 40G on
    // the deep-buffer interconnect), per the §5.2.1 tuning rule.
    jcfg.ofo_timeout = Ms(1);
    opt.host_template.gro_factory = MakeJugglerFactory(jcfg);
  }
  rig->testbed = BuildDumbbell(&rig->world, opt);
  DumbbellTestbed& t = rig->testbed;
  rig->target = ConnectHosts(t.sender1, t.receiver1, 1000, 2000);
  for (uint16_t i = 0; i < 7; ++i) {
    rig->antagonists.push_back(ConnectHosts(t.sender2, t.receiver2, 3000 + i, 4000 + i));
    rig->antagonists.back().a_to_b->SendForever();
  }
  rig->target.a_to_b->SendForever();
  (void)seed;
  return rig;
}

inline void StartController(GuaranteeRig* rig, int64_t guarantee_bps, uint64_t seed) {
  PriorityControllerConfig pcfg;
  pcfg.alpha = 0.1;
  pcfg.target_rate_bps = guarantee_bps;
  pcfg.line_rate_bps = 40 * kGbps;
  pcfg.seed = seed;
  rig->controller =
      std::make_unique<PriorityController>(&rig->world.loop, pcfg, rig->target.a_to_b);
  rig->controller->Start();
}

}  // namespace juggler

#endif  // JUGGLER_BENCH_GUARANTEE_COMMON_H_
