// Extensions beyond the paper's headline evaluation, built from its §2
// discussion:
//
//  (a) Load-balancing granularity sweep including CONGA-style flowlet
//      switching (§2.2): flow < flowlet < TSO < packet. Flowlets avoid most
//      reordering by construction; per-packet still wins the tail at high
//      load — but only with a reorder-resilient receiver.
//  (b) DCTCP (the datacenter transport the paper's latency arguments assume)
//      vs the default loss-based TCP under per-packet spraying with Juggler:
//      ECN keeps fabric queues shallow, tightening the small-RPC tail.
//  (c) pFabric-style SRPT marking (§2.1): a flow's packets jump to high
//      priority as it nears completion — intra-flow priority flips reorder
//      packets, so the scheme only works on Juggler receivers.

#include <memory>

#include "bench/bench_common.h"
#include "src/qos/srpt_prioritizer.h"

namespace juggler {
namespace {

struct RpcResult {
  double small_p99_us = 0;
  double large_p99_ms = 0;
};

RpcResult RunClosRpc(LbPolicy lb, bool dctcp, double load) {
  SimWorld world;
  ClosOptions opt;
  opt.hosts_per_tor = 8;
  opt.lb = lb;
  opt.host_template = DefaultHost();
  opt.host_template.rx.num_queues = 8;
  opt.host_template.num_app_cores = 8;
  opt.host_template.rx.int_coalesce = Us(20);
  opt.host_template.tcp.initial_rto = Ms(10);
  opt.host_template.tcp.max_rto = Ms(16);
  opt.host_template.tcp.dctcp = dctcp;
  JugglerConfig jcfg;
  jcfg.inseq_timeout = Us(13);
  jcfg.ofo_timeout = Us(300);
  opt.host_template.gro_factory = MakeJugglerFactory(jcfg);
  opt.ecn = dctcp;  // CE-marking fabric ports (K ~ 100KB at 40G)
  ClosTestbed t = BuildClos(&world, opt);

  const TimeNs horizon = Ms(200);
  PercentileSampler large_lat;
  PercentileSampler small_lat;
  std::vector<std::unique_ptr<MessageStream>> streams;
  std::vector<std::unique_ptr<OpenLoopRpcGenerator>> generators;
  for (size_t h = 0; h < 8; ++h) {
    const bool large = h < 4;
    std::vector<MessageStream*> pair_streams;
    for (uint16_t c = 0; c < 8; ++c) {
      EndpointPair pair = ConnectHosts(t.left_hosts[h], t.right_hosts[h],
                                       static_cast<uint16_t>(1000 + c), 2000);
      streams.push_back(std::make_unique<MessageStream>(&world.loop, pair.a_to_b, pair.b_to_a,
                                                        large ? &large_lat : &small_lat));
      pair_streams.push_back(streams.back().get());
    }
    RpcGeneratorConfig gcfg;
    gcfg.message_bytes = large ? 1'000'000 : 150;
    const double bps = large ? (load * 80e9 - 4e8) / 4 : 100e6;
    gcfg.messages_per_sec = bps / (static_cast<double>(gcfg.message_bytes) * 8.0);
    gcfg.stop_time = horizon;
    gcfg.seed = 1000 + h;
    generators.push_back(std::make_unique<OpenLoopRpcGenerator>(&world.loop, gcfg, pair_streams));
    generators.back()->Start();
  }
  world.loop.RunUntil(horizon + Ms(20));
  return RpcResult{small_lat.Percentile(99), large_lat.Percentile(99) / 1000.0};
}

void GranularitySweep() {
  PrintHeader("Extension (a): load-balancing granularity incl. flowlets",
              "Figure-19 Clos at 75% load, Juggler receivers. Flowlet switching\n"
              "(CONGA-style, 500us gap) sits between per-flow and per-TSO; per-\n"
              "packet spraying still has the best tail.");
  TablePrinter table({"policy", "150B RPC p99(us)", "1MB RPC p99(ms)"});
  for (LbPolicy lb :
       {LbPolicy::kEcmp, LbPolicy::kFlowlet, LbPolicy::kPerTso, LbPolicy::kPerPacket}) {
    const RpcResult r = RunClosRpc(lb, /*dctcp=*/false, 0.75);
    table.AddRow({LbPolicyName(lb), TablePrinter::Num(r.small_p99_us, 0),
                  TablePrinter::Num(r.large_p99_ms, 2)});
  }
  table.Print();
}

// ---- (b) DCTCP on a marked fabric ----

struct SrptRig {
  SimWorld world;
  DumbbellTestbed testbed;
};

void DctcpComparison() {
  PrintHeader("Extension (b): DCTCP under per-packet spraying",
              "Same Clos RPC workload at 75% load; DCTCP senders against ECN-less\n"
              "fabric degenerate to standard behaviour, so this compares transport\n"
              "stacks end to end (fabric RED vs shallow ECN queues is visible in\n"
              "the small-RPC tail).");
  TablePrinter table({"transport", "150B RPC p99(us)", "1MB RPC p99(ms)"});
  const RpcResult base = RunClosRpc(LbPolicy::kPerPacket, false, 0.75);
  const RpcResult dctcp = RunClosRpc(LbPolicy::kPerPacket, true, 0.75);
  table.AddRow({"standard", TablePrinter::Num(base.small_p99_us, 0),
                TablePrinter::Num(base.large_p99_ms, 2)});
  table.AddRow({"dctcp", TablePrinter::Num(dctcp.small_p99_us, 0),
                TablePrinter::Num(dctcp.large_p99_ms, 2)});
  table.Print();
}

// ---- (c) SRPT dynamic prioritization ----

void SrptDemo() {
  PrintHeader("Extension (c): pFabric-style SRPT marking (§2.1)",
              "One bulk antagonist + repeated 1MB transfers whose packets jump to\n"
              "high priority for the last 256KB of each message. The priority flip\n"
              "reorders the flow's own packets, so the gain only materialises on a\n"
              "Juggler receiver.");
  TablePrinter table({"receiver", "srpt", "1MB completion p99(ms)"});
  for (bool use_juggler : {true, false}) {
    for (bool srpt : {false, true}) {
      auto rig = std::make_unique<SrptRig>();
      DumbbellOptions opt;
      opt.host_template = DefaultHost();
      opt.host_template.rx.num_queues = 8;
      opt.host_template.num_app_cores = 8;
      if (use_juggler) {
        JugglerConfig jcfg;
        jcfg.inseq_timeout = Us(13);
        jcfg.ofo_timeout = Ms(1);
        opt.host_template.gro_factory = MakeJugglerFactory(jcfg);
      }
      rig->testbed = BuildDumbbell(&rig->world, opt);
      DumbbellTestbed& t = rig->testbed;
      // Antagonist fills the low-priority queue.
      EndpointPair antagonist = ConnectHosts(t.sender2, t.receiver2, 3000, 4000);
      antagonist.a_to_b->SendForever();
      // Measured: open-loop 1MB messages with SRPT marking.
      EndpointPair target = ConnectHosts(t.sender1, t.receiver1, 1000, 2000);
      std::unique_ptr<SrptPrioritizer> prioritizer;
      if (srpt) {
        prioritizer = std::make_unique<SrptPrioritizer>(target.a_to_b, 256 * 1024);
      }
      PercentileSampler lat;
      MessageStream stream(&rig->world.loop, target.a_to_b, target.b_to_a, &lat);
      RpcGeneratorConfig gcfg;
      gcfg.message_bytes = 1'000'000;
      gcfg.messages_per_sec = 1500;  // ~12Gb/s offered
      gcfg.stop_time = Ms(200);
      gcfg.seed = 77;
      OpenLoopRpcGenerator gen(&rig->world.loop, gcfg, {&stream});
      gen.Start();
      rig->world.loop.RunUntil(Ms(230));
      table.AddRow({use_juggler ? "juggler" : "vanilla", srpt ? "on" : "off",
                    TablePrinter::Num(lat.Percentile(99) / 1000.0, 2)});
    }
  }
  table.Print();
}

}  // namespace
}  // namespace juggler

int main() {
  juggler::GranularitySweep();
  juggler::DctcpComparison();
  juggler::SrptDemo();
  return 0;
}
