// §3.1 ablation: why fix batching *and* ordering in GRO, rather than batch
// out-of-order sk_buffs into linked lists?
//
// The paper reports that linked-list batching costs ~50% more CPU than
// frags[] merging even on purely in-order traffic (cache misses chasing the
// chain). We run the same in-order 10Gb/s flow through StandardGro,
// LinkedListGro and Juggler and compare receive-path CPU.

#include "bench/bench_common.h"

namespace juggler {
namespace {

struct Result {
  double rx_core_pct = 0;
  double app_core_pct = 0;
  double gbps = 0;
};

Result RunOnce(const NicRx::GroFactory& factory) {
  SimWorld world;
  NetFpgaOptions opt;
  opt.link_rate_bps = 10 * kGbps;
  opt.reorder_delay = 0;
  opt.sender = DefaultHost();
  opt.receiver = DefaultHost();
  opt.receiver.gro_factory = factory;
  NetFpgaTestbed t = BuildNetFpga(&world, opt);
  EndpointPair pair = ConnectHosts(t.sender, t.receiver, 1000, 2000);
  pair.a_to_b->SendForever();
  world.loop.RunUntil(Ms(30));
  CpuUsageMeter rx_meter(t.receiver->nic_rx()->rx_core(0));
  CpuUsageMeter app_meter(t.receiver->app_core());
  rx_meter.Reset(world.loop.now());
  app_meter.Reset(world.loop.now());
  GoodputMeter goodput(pair.b_to_a);
  goodput.Reset();
  world.loop.RunUntil(Ms(130));
  return Result{rx_meter.Utilization(world.loop.now()) * 100.0,
                app_meter.Utilization(world.loop.now()) * 100.0, goodput.Gbps(Ms(100))};
}

}  // namespace
}  // namespace juggler

int main() {
  using namespace juggler;
  PrintHeader("§3.1 ablation: linked-list batching CPU cost",
              "In-order 10Gb/s flow. Expected: LinkedListGro burns ~50% more\n"
              "RX-core CPU than StandardGro; Juggler matches StandardGro exactly\n"
              "(identical in-order fast path).");
  const Result std_r = RunOnce(MakeStandardGroFactory());
  const Result ll_r = RunOnce(MakeLinkedListGroFactory());
  const Result jug_r = RunOnce(MakeJugglerFactory());
  TablePrinter table({"engine", "rx_core(%)", "app_core(%)", "throughput(Gb/s)"});
  table.AddRow({"standard_gro", TablePrinter::Num(std_r.rx_core_pct, 1),
                TablePrinter::Num(std_r.app_core_pct, 1), TablePrinter::Num(std_r.gbps, 2)});
  table.AddRow({"linkedlist_gro", TablePrinter::Num(ll_r.rx_core_pct, 1),
                TablePrinter::Num(ll_r.app_core_pct, 1), TablePrinter::Num(ll_r.gbps, 2)});
  table.AddRow({"juggler", TablePrinter::Num(jug_r.rx_core_pct, 1),
                TablePrinter::Num(jug_r.app_core_pct, 1), TablePrinter::Num(jug_r.gbps, 2)});
  table.Print();
  std::printf("linked-list / standard RX-core ratio: %.2f (paper: ~1.5)\n",
              ll_r.rx_core_pct / std_r.rx_core_pct);
  return 0;
}
