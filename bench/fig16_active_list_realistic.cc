// Figure 16: active-list length under realistic (Clos) reordering.
//
// Setup: 256 flows from the 8 left-ToR hosts into one receiver RX queue at
// 20Gb/s total, with ~20Gb/s of background traffic on the same uplinks and
// per-packet load balancing; reordering comes from real queueing-delay
// variation, not an injected delay. Two variants: 40Gb/s receiver port and
// 10Gb/s receiver port (the latter congests and induces losses, exercising
// the loss-recovery list).
//
// Expected shape: the active list is almost always tiny (mean < 1, 99th
// percentile < 5-6) because a flow is only active while a TSO burst is in
// flight; the loss-recovery list is almost always empty.

#include <memory>

#include "bench/bench_common.h"
#include "src/core/juggler.h"

namespace juggler {
namespace {

void RunVariant(int64_t receiver_rate_bps) {
  SimWorld world;
  ClosOptions opt;
  opt.hosts_per_tor = 8;
  opt.lb = LbPolicy::kPerPacket;
  opt.host_link_rate_bps = receiver_rate_bps;
  opt.fabric_link_rate_bps = 40 * kGbps;
  // Shallow ToR port buffers (~40us at 40G) keep the cross-path delay
  // difference in the "10s of microseconds" regime the paper reports for
  // real-world queueing-induced reordering.
  opt.switch_buffer_bytes = 200'000;
  opt.host_template = DefaultHost();
  opt.host_template.rx.num_queues = 1;
  opt.host_template.rx.force_queue = 0;
  JugglerConfig jcfg;
  jcfg.inseq_timeout = Us(15);
  jcfg.ofo_timeout = Us(50);
  jcfg.max_flows = 4096;  // measuring demand, not enforcing the cap
  opt.host_template.gro_factory = MakeJugglerFactory(jcfg);
  ClosTestbed t = BuildClos(&world, opt);

  // 256 measured flows: 8 senders x 32 connections -> right_hosts[0], paced
  // per connection to an aggregate near the receiver's port rate. Pacing
  // gates whole TSO bursts, so the traffic stays bursty (the source of the
  // queueing-delay variation that reorders sprayed packets).
  const int64_t offered = receiver_rate_bps >= 20 * kGbps ? 20 * kGbps : receiver_rate_bps;
  std::vector<EndpointPair> flows;
  Rng stagger(opt.seed * 31 + 7);
  for (size_t h = 0; h < 8; ++h) {
    for (uint16_t c = 0; c < 32; ++c) {
      flows.push_back(
          ConnectHosts(t.left_hosts[h], t.right_hosts[0], static_cast<uint16_t>(1000 + c), 2000));
      TcpEndpoint* sender = flows.back().a_to_b;
      sender->set_pacing_rate(offered / 256);
      // Stagger connection starts over 20ms: synchronized slow-starts of 256
      // flows would mass-drop and wedge a cohort in RTO backoff.
      world.loop.Schedule(stagger.NextInRange(0, Ms(20)), [sender] { sender->SendForever(); });
    }
  }
  // Background: bursty bulk flows to the other right hosts, bringing the two
  // 40G uplinks to ~50% total load.
  std::vector<EndpointPair> background;
  for (size_t h = 0; h < 8; ++h) {
    background.push_back(ConnectHosts(t.left_hosts[h], t.right_hosts[1 + (h % 7)],
                                      static_cast<uint16_t>(5000 + h), 6000));
    background.back().a_to_b->set_pacing_rate(2'500'000'000);
    background.back().a_to_b->SendForever();
  }

  // Warm up past startup transients, then sample for 200ms.
  auto* gro = static_cast<Juggler*>(t.right_hosts[0]->nic_rx()->gro(0));
  world.loop.RunUntil(Ms(50));
  const JugglerStats warm = gro->juggler_stats();
  const uint64_t warm_ooo = gro->stats().ooo_packets;
  PercentileSampler active_len;
  PercentileSampler loss_len;
  PeriodicTask sampler(&world.loop, Us(100), Ms(250), [gro, &active_len, &loss_len] {
    active_len.Add(static_cast<double>(gro->active_list_len()));
    loss_len.Add(static_cast<double>(gro->loss_list_len()));
  });
  world.loop.RunUntil(Ms(250));

  TablePrinter table({"metric", "value"});
  table.AddRow({"active list mean", TablePrinter::Num(active_len.Mean(), 2)});
  table.AddRow({"active list p99", TablePrinter::Num(active_len.Percentile(99), 1)});
  table.AddRow({"active list max", TablePrinter::Num(active_len.Max(), 0)});
  table.AddRow({"loss-recovery list mean", TablePrinter::Num(loss_len.Mean(), 3)});
  table.AddRow({"loss-recovery list p99", TablePrinter::Num(loss_len.Percentile(99), 1)});
  const double window_sec = ToSec(Ms(200));
  table.AddRow(
      {"loss-recovery entries/sec",
       TablePrinter::Num(static_cast<double>(gro->juggler_stats().loss_recovery_entries -
                                             warm.loss_recovery_entries) /
                             window_sec,
                         1)});
  table.AddRow(
      {"loss-recovery exits/sec",
       TablePrinter::Num(static_cast<double>(gro->juggler_stats().loss_recovery_exits -
                                             warm.loss_recovery_exits) /
                             window_sec,
                         1)});
  table.AddRow({"flows tracked (table size)", std::to_string(gro->flow_table_size())});
  table.AddRow(
      {"ooo packets seen", std::to_string(gro->stats().ooo_packets - warm_ooo)});
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace juggler

int main() {
  using namespace juggler;
  PrintHeader("Figure 16",
              "Active-list length statistics under realistic Clos reordering\n"
              "(256 flows into one RX queue, per-packet load balancing, background\n"
              "traffic on the uplinks). Expected: mean < 1, p99 <= ~5 at 40G and\n"
              "~6 at 10G; loss-recovery list almost always empty.");
  std::printf("-- 40Gb/s receiver port --\n");
  RunVariant(40 * kGbps);
  std::printf("-- 10Gb/s receiver port (congested: induces losses) --\n");
  RunVariant(10 * kGbps);
  return 0;
}
