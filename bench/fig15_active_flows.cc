// Figure 15: how many flows does Juggler actually track?
//
// Setup: N concurrent flows (64..1024) share 10Gb/s of total traffic into 4
// receiver RX queues, with NetFPGA reordering of 250us..1ms. Sample the
// active-list length of each gro_table every 100us and report the 99th
// percentile of the total.
//
// Expected shape: the count grows slowly with concurrency and reordering,
// peaks below ~35, and *drops* past 256 flows — low-rate flows send
// single-MTU TSO bursts that cannot arrive out of order with themselves, so
// they never linger in the active list.

#include <memory>

#include "bench/bench_common.h"
#include "src/core/juggler.h"

namespace juggler {
namespace {

double RunOnce(size_t num_flows, TimeNs reorder) {
  SimWorld world;
  NetFpgaOptions opt;
  opt.link_rate_bps = 10 * kGbps;
  opt.reorder_delay = reorder;
  opt.sender = DefaultHost();
  opt.receiver = DefaultHost();
  opt.receiver.rx.num_queues = 4;
  JugglerConfig jcfg = TunedJuggler(10 * kGbps, reorder);
  jcfg.inseq_timeout = Us(15);  // the paper's default (§5)
  jcfg.max_flows = 4096;  // no eviction pressure: we are measuring demand
  opt.receiver.gro_factory = MakeJugglerFactory(jcfg);
  NetFpgaTestbed t = BuildNetFpga(&world, opt);

  // N bulk flows competing for the 10Gb/s link; per-flow rate (and hence
  // TSO burst size) shrinks as N grows, which is what drives the paper's
  // observed decline past 256 flows.
  std::vector<EndpointPair> pairs;
  pairs.reserve(num_flows);
  for (size_t i = 0; i < num_flows; ++i) {
    const uint16_t src = static_cast<uint16_t>(1000 + i);
    pairs.push_back(ConnectHosts(t.sender, t.receiver, src, 2000));
    pairs.back().a_to_b->SendForever();
  }

  PercentileSampler active_len;
  RxDriver* nic = t.receiver->nic_rx();
  PeriodicTask sampler(&world.loop, Us(100), Ms(150), [nic, &active_len] {
    size_t total = 0;
    for (size_t q = 0; q < nic->num_queues(); ++q) {
      total += static_cast<Juggler*>(nic->gro(q))->active_list_len();
    }
    active_len.Add(static_cast<double>(total));
  });

  world.loop.RunUntil(Ms(150));
  return active_len.Percentile(99);
}

}  // namespace
}  // namespace juggler

int main() {
  using namespace juggler;
  PrintHeader("Figure 15",
              "99th percentile of the number of active flows Juggler tracks, vs\n"
              "concurrent flows and reordering (10Gb/s into 4 RX queues). Expected:\n"
              "grows slowly, peaks < ~35, declines past 256 concurrent flows.");

  const size_t flow_counts[] = {64, 128, 256, 512, 1024};
  const TimeNs reorders[] = {Us(250), Us(500), Us(750), Ms(1)};
  TablePrinter table({"concurrent_flows", "p99@250us", "p99@500us", "p99@750us", "p99@1ms"});
  for (size_t n : flow_counts) {
    std::vector<std::string> row{std::to_string(n)};
    for (TimeNs reorder : reorders) {
      row.push_back(TablePrinter::Num(RunOnce(n, reorder), 1));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}
