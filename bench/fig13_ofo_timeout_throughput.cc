// Figure 13: single-flow throughput vs ofo_timeout.
//
// Setup: one TCP flow at 10Gb/s through the NetFPGA switch with tau =
// 250/500/750us of reordering; sweep ofo_timeout 100..1000us.
//
// Expected shape: throughput collapses when ofo_timeout is well below
// tau - tau0 (tau0 = 125us interrupt coalescing, which absorbs part of the
// reordering before GRO) because Juggler flushes holes early and TCP sees
// reordering; it reaches line rate once ofo_timeout ~ tau - tau0 or larger.

#include "bench/bench_common.h"

namespace juggler {
namespace {

double RunOnce(TimeNs reorder, TimeNs ofo_timeout) {
  SimWorld world;
  NetFpgaOptions opt;
  opt.link_rate_bps = 10 * kGbps;
  opt.reorder_delay = reorder;
  opt.sender = DefaultHost();
  opt.receiver = DefaultHost();
  JugglerConfig jcfg;
  jcfg.inseq_timeout = Us(52);
  jcfg.ofo_timeout = ofo_timeout;
  opt.receiver.gro_factory = MakeJugglerFactory(jcfg);
  NetFpgaTestbed t = BuildNetFpga(&world, opt);

  EndpointPair pair = ConnectHosts(t.sender, t.receiver, 1000, 2000);
  pair.a_to_b->SendForever();

  const TimeNs warmup = Ms(30);
  const TimeNs window = Ms(100);
  world.loop.RunUntil(warmup);
  GoodputMeter goodput(pair.b_to_a);
  goodput.Reset();
  world.loop.RunUntil(warmup + window);
  return goodput.Gbps(window);
}

}  // namespace
}  // namespace juggler

int main() {
  using namespace juggler;
  PrintHeader("Figure 13",
              "Single-flow throughput vs ofo_timeout (10Gb/s, NetFPGA reordering of\n"
              "250/500/750us, interrupt coalescing tau0=125us). Line rate requires\n"
              "ofo_timeout >= tau - tau0.");

  const TimeNs reorders[] = {Us(250), Us(500), Us(750)};
  const TimeNs ofos[] = {Us(50),  Us(100), Us(200), Us(300), Us(400),
                         Us(500), Us(600), Us(700), Us(800), Us(1000)};
  TablePrinter table({"ofo_timeout(us)", "tput@250us(Gb/s)", "tput@500us(Gb/s)",
                      "tput@750us(Gb/s)"});
  for (TimeNs ofo : ofos) {
    std::vector<std::string> row{TablePrinter::Num(ToUs(ofo), 0)};
    for (TimeNs reorder : reorders) {
      row.push_back(TablePrinter::Num(RunOnce(reorder, ofo), 2));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}
