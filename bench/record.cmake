# Re-records the tracked perf artifacts in one deterministic pass:
#
#   bench/perf_baseline.h   (perf_core --baseline-header, commit auto-filled)
#   BENCH_core.json         (perf_core + perf_fabric + perf_scale sections)
#
# Invoked by the `bench-record` target with -DSRC_DIR / -DBENCH_BIN_DIR.
# Each bench merge-preserves the others' sections, so the order below only
# matters for wall-clock: perf_core first, since it also writes the header.
# All three run serially (execute_process) — the gated numbers are
# wall-clock rates and must not share the box.

foreach(var SRC_DIR BENCH_BIN_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "bench/record.cmake needs -D${var}=...")
  endif()
endforeach()

execute_process(
  COMMAND git -C ${SRC_DIR} rev-parse --short HEAD
  OUTPUT_VARIABLE COMMIT
  OUTPUT_STRIP_TRAILING_WHITESPACE
  RESULT_VARIABLE GIT_RC)
if(NOT GIT_RC EQUAL 0)
  set(COMMIT "unrecorded")
endif()

set(OUT_JSON ${SRC_DIR}/BENCH_core.json)

message(STATUS "bench-record: perf_core @ ${COMMIT}")
execute_process(
  COMMAND ${BENCH_BIN_DIR}/perf_core --out ${OUT_JSON}
          --baseline-header ${SRC_DIR}/bench/perf_baseline.h --commit ${COMMIT}
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "perf_core failed (${RC})")
endif()

message(STATUS "bench-record: perf_fabric")
execute_process(
  COMMAND ${BENCH_BIN_DIR}/perf_fabric --out ${OUT_JSON}
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "perf_fabric failed (${RC})")
endif()

message(STATUS "bench-record: perf_scale (with memory-flatness gate)")
execute_process(
  COMMAND ${BENCH_BIN_DIR}/perf_scale --gate --out ${OUT_JSON}
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "perf_scale failed (${RC})")
endif()

message(STATUS "bench-record: done — ${OUT_JSON} and bench/perf_baseline.h updated.")
message(STATUS "Rebuild to compile the new baseline into the perf gates.")
