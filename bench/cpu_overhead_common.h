// Shared implementation for Figures 9 and 10: CPU overhead of Juggler vs the
// vanilla stack, with and without reordering.
//
// Setup (§5.1.1, adapted to the 2-ToR Clos of Figure 19 — see DESIGN.md):
// senders under ToR A push a 20Gb/s aggregate to one receiver RX queue under
// ToR B. Background bulk traffic loads the ToR uplinks to ~50% so that
// per-packet spraying produces real queueing-induced reordering; ECMP is the
// no-reordering baseline. Four scenarios x {app core %, RX core %,
// throughput % of target}.
//
// Expected shape (paper): with ECMP, Juggler == vanilla on every metric.
// With per-packet spraying, vanilla's app core saturates (~15x more
// segments, ~40% OOO, ~15x more ACKs) and throughput drops ~35%; Juggler
// holds line rate with < ~10 points more CPU than the vanilla/in-order case.

#ifndef JUGGLER_BENCH_CPU_OVERHEAD_COMMON_H_
#define JUGGLER_BENCH_CPU_OVERHEAD_COMMON_H_

#include <memory>
#include <vector>

#include "bench/bench_common.h"

namespace juggler {

struct CpuResult {
  double app_core_pct = 0;
  double rx_core_pct = 0;
  double throughput_pct = 0;  // of the 20Gb/s target
  double segments_per_sec = 0;
  double acks_per_sec = 0;
  double ooo_fraction = 0;  // of data packets at GRO
};

inline CpuResult RunCpuScenario(size_t num_flows, bool reorder, bool use_juggler) {
  SimWorld world;
  ClosOptions opt;
  opt.hosts_per_tor = 8;
  opt.lb = reorder ? LbPolicy::kPerPacket : LbPolicy::kEcmp;
  opt.host_template = DefaultHost();
  opt.host_template.rx.num_queues = 1;
  opt.host_template.rx.force_queue = 0;
  // Datacenter RTO bounds so a single startup loss resolves within warmup.
  opt.host_template.tcp.initial_rto = Ms(10);
  opt.host_template.tcp.max_rto = Ms(16);
  if (use_juggler) {
    JugglerConfig jcfg;
    jcfg.inseq_timeout = Us(13);  // 40G rule of thumb (§5.2.1)
    jcfg.ofo_timeout = Us(50);
    opt.host_template.gro_factory = MakeJugglerFactory(jcfg);
  }
  ClosTestbed t = BuildClos(&world, opt);

  // Measured traffic: `num_flows` connections paced to a 20Gb/s aggregate.
  const int64_t target_bps = 20 * kGbps;
  std::vector<EndpointPair> flows;
  if (num_flows == 1) {
    flows.push_back(ConnectHosts(t.left_hosts[0], t.right_hosts[0], 1000, 2000));
  } else {
    const size_t per_host = num_flows / 8;
    for (size_t h = 0; h < 8; ++h) {
      for (size_t c = 0; c < per_host; ++c) {
        flows.push_back(ConnectHosts(t.left_hosts[h], t.right_hosts[0],
                                     static_cast<uint16_t>(1000 + c), 2000));
      }
    }
  }
  Rng stagger(991);
  for (auto& pair : flows) {
    TcpEndpoint* sender = pair.a_to_b;
    sender->set_pacing_rate(target_bps / static_cast<int64_t>(flows.size()));
    if (flows.size() == 1) {
      sender->SendForever();
    } else {
      // Stagger starts: synchronized slow-starts would wedge a cohort of
      // flows in RTO backoff and depress every scenario equally.
      world.loop.Schedule(stagger.NextInRange(0, Ms(20)), [sender] { sender->SendForever(); });
    }
  }

  // Background: each left host sends a 2.5Gb/s paced bulk flow to right
  // hosts 1..7, bringing the two 40G uplinks to ~50% load (20G measured +
  // 20G background over 80G capacity).
  std::vector<EndpointPair> background;
  for (size_t h = 0; h < 8; ++h) {
    background.push_back(ConnectHosts(t.left_hosts[h], t.right_hosts[1 + (h % 7)],
                                      static_cast<uint16_t>(5000 + h), 6000));
    background.back().a_to_b->set_pacing_rate(2'500'000'000);
    background.back().a_to_b->SendForever();
  }

  const TimeNs warmup = Ms(50);
  const TimeNs window = Ms(150);
  world.loop.RunUntil(warmup);

  Host* receiver = t.right_hosts[0];
  CpuUsageMeter app_meter(receiver->app_core());
  CpuUsageMeter rx_meter(receiver->nic_rx()->rx_core(0));
  app_meter.Reset(world.loop.now());
  rx_meter.Reset(world.loop.now());
  const GroStats gro_before = receiver->nic_rx()->TotalGroStats();
  uint64_t delivered_before = 0;
  uint64_t acks_before = 0;
  for (const auto& pair : flows) {
    delivered_before += pair.b_to_a->bytes_delivered();
    acks_before += pair.b_to_a->receiver_stats().acks_sent;
  }

  world.loop.RunUntil(warmup + window);

  CpuResult r;
  r.app_core_pct = app_meter.Utilization(world.loop.now()) * 100.0;
  r.rx_core_pct = rx_meter.Utilization(world.loop.now()) * 100.0;
  uint64_t delivered = 0;
  uint64_t acks = 0;
  for (const auto& pair : flows) {
    delivered += pair.b_to_a->bytes_delivered();
    acks += pair.b_to_a->receiver_stats().acks_sent;
  }
  const GroStats gro_after = receiver->nic_rx()->TotalGroStats();
  const double secs = ToSec(window);
  r.throughput_pct =
      RateBps(static_cast<int64_t>(delivered - delivered_before), window) / 20e9 * 100.0;
  r.segments_per_sec =
      static_cast<double>(gro_after.data_segments_out - gro_before.data_segments_out) / secs;
  r.acks_per_sec = static_cast<double>(acks - acks_before) / secs;
  const uint64_t data_pkts = gro_after.data_packets_in - gro_before.data_packets_in;
  const uint64_t ooo = gro_after.ooo_packets - gro_before.ooo_packets;
  r.ooo_fraction = data_pkts == 0 ? 0.0 : static_cast<double>(ooo) / static_cast<double>(data_pkts);
  return r;
}

inline void RunCpuOverheadFigure(const char* figure, size_t num_flows) {
  char description[256];
  std::snprintf(description, sizeof(description),
                "CPU overhead, %zu flow(s) at a 20Gb/s target into one RX queue.\n"
                "ECMP = no reordering; per-packet spraying with 50%% background load\n"
                "= realistic reordering.",
                num_flows);
  PrintHeader(figure, description);

  struct Row {
    const char* scenario;
    bool reorder;
    bool use_juggler;
  };
  const Row rows[] = {
      {"vanilla, no reordering (ECMP)", false, false},
      {"juggler, no reordering (ECMP)", false, true},
      {"vanilla, reordering (per-packet)", true, false},
      {"juggler, reordering (per-packet)", true, true},
  };
  TablePrinter table({"scenario", "app_core(%)", "rx_core(%)", "throughput(%)",
                      "segs/s(k)", "acks/s(k)", "ooo(%)"});
  for (const Row& row : rows) {
    const CpuResult r = RunCpuScenario(num_flows, row.reorder, row.use_juggler);
    table.AddRow({row.scenario, TablePrinter::Num(r.app_core_pct, 1),
                  TablePrinter::Num(r.rx_core_pct, 1), TablePrinter::Num(r.throughput_pct, 1),
                  TablePrinter::Num(r.segments_per_sec / 1000.0, 1),
                  TablePrinter::Num(r.acks_per_sec / 1000.0, 1),
                  TablePrinter::Num(r.ooo_fraction * 100.0, 1)});
  }
  table.Print();
}

}  // namespace juggler

#endif  // JUGGLER_BENCH_CPU_OVERHEAD_COMMON_H_
