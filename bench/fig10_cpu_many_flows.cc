// Figure 10: CPU overhead, 256-flow case. See cpu_overhead_common.h.

#include "bench/cpu_overhead_common.h"

int main() {
  juggler::RunCpuOverheadFigure("Figure 10", 256);
  return 0;
}
