// perf_fabric: multi-core scaling of ONE large scenario on the sharded
// conservative-lookahead engine.
//
// perf_core tracks the per-event/per-packet hot path and the sweep runner
// parallelizes *across* independent points; this bench measures the one axis
// those leave uncovered — how fast a single big scenario runs as workers are
// added. A 32-host Clos (16 per ToR, 2 spines) runs 16 concurrent bulk
// transfers (left host i -> right host i); the engine partitions it into one
// shard domain per host and per switch, and the requested worker count is a
// pure multiplexing knob. The simulated outcome (packets seen by every NIC,
// bytes delivered by every receiver, engine windows) must be identical at
// every worker count — the bench exits 1 if it is not — so the curve is pure
// engine scaling, not workload drift.
//
// Results merge into BENCH_core.json as a "fabric_scaling" section (every
// other bench's sections are preserved; re-running replaces this one).
// `hardware_threads` is recorded so a curve measured on a small machine is
// not mistaken for the engine's ceiling: with fewer cores than workers the
// extra workers just time-slice one core and the speedup tops out at ~1x.
//
// Modes:
//   perf_fabric [--smoke] [--out PATH]   run 1/2/4/8 workers, update JSON
//
// Exit status: 0 on success, 1 when any worker count changes the simulated
// outcome (a determinism bug, not a perf problem).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/perf_baseline.h"
#include "src/util/json.h"
#include "src/util/thread_budget.h"

namespace juggler {
namespace {

struct FabricPoint {
  size_t requested = 0;  // worker threads asked of the engine
  size_t workers = 0;    // granted by the thread budget
  double wall_s = 0;
  uint64_t packets = 0;          // sum of NicRx packets_in over all 32 hosts
  uint64_t delivered_bytes = 0;  // sum over the 16 receivers
  uint64_t windows = 0;          // engine lookahead windows
  uint64_t events = 0;           // events executed across all domain loops
  double packets_per_sec = 0;    // simulated packets per wall second
};

FabricPoint RunFabric(size_t workers, uint64_t bytes_per_pair) {
  CpuCostModel costs;
  ShardedEngine engine(workers);
  ClosOptions opt;
  opt.hosts_per_tor = 16;
  opt.host_template = DefaultHost();
  opt.host_template.rx.int_coalesce = Us(20);
  opt.host_template.gro_factory =
      MakeJugglerFactory(TunedJuggler(opt.host_link_rate_bps, Us(100), Us(20)));
  ShardedClosTestbed t = BuildShardedClos(&engine, &costs, opt);

  std::vector<EndpointPair> pairs;
  pairs.reserve(t.left_hosts.size());
  for (size_t i = 0; i < t.left_hosts.size(); ++i) {
    pairs.push_back(ConnectHosts(t.left_hosts[i], t.right_hosts[i], 1000, 2000));
    pairs.back().a_to_b->Send(bytes_per_pair);
  }
  const uint64_t target = bytes_per_pair * pairs.size();

  FabricPoint p;
  p.requested = workers;
  const auto t0 = std::chrono::steady_clock::now();
  TimeNs now = 0;
  uint64_t delivered = 0;
  const TimeNs limit = Ms(800);
  while (now < limit && delivered < target) {
    now += Ms(5);
    engine.Run(now);
    delivered = 0;
    for (const EndpointPair& pair : pairs) {
      delivered += pair.b_to_a->bytes_delivered();
    }
  }
  p.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  p.workers = engine.stats().workers;
  p.windows = engine.stats().windows;
  p.delivered_bytes = delivered;
  for (Host* h : t.left_hosts) {
    p.packets += h->nic_rx()->stats().packets_in;
  }
  for (Host* h : t.right_hosts) {
    p.packets += h->nic_rx()->stats().packets_in;
  }
  for (size_t d = 0; d < engine.domain_count(); ++d) {
    p.events += engine.domain(d)->loop().executed_events();
  }
  p.packets_per_sec = static_cast<double>(p.packets) / p.wall_s;
  return p;
}

// Merge the "fabric_scaling" section into the BENCH_core.json written by
// perf_core, preserving every other bench's sections regardless of
// ordering; a missing or malformed file becomes a minimal standalone
// object.
void WriteFabricSection(const std::vector<FabricPoint>& points, const std::string& path) {
  Json doc = Json::Object();
  {
    std::ifstream in(path);
    if (in) {
      std::stringstream ss;
      ss << in.rdbuf();
      std::string error;
      if (!Json::Parse(ss.str(), &doc, &error)) {
        std::fprintf(stderr, "perf_fabric: %s unparseable (%s), rewriting\n", path.c_str(),
                     error.c_str());
        doc = Json::Object();
      }
    }
  }
  if (doc.Find("bench") == nullptr) {
    doc.Set("bench", Json::Str("perf_core"));
  }
  Json section = Json::Object();
  section.Set("scenario", Json::Str("clos_32_hosts_16_bulk_pairs"));
  section.Set("hardware_threads", Json::Uint(std::thread::hardware_concurrency()));
  section.Set("baseline_1worker_packets_per_sec",
              Json::Double(perf_baseline::kFabricClosPacketsPerSec));
  Json arr = Json::Array();
  const double base = points.empty() ? 0.0 : points.front().packets_per_sec;
  for (const FabricPoint& p : points) {
    Json entry = Json::Object();
    entry.Set("requested_workers", Json::Uint(p.requested));
    entry.Set("granted_workers", Json::Uint(p.workers));
    entry.Set("packets_per_sec", Json::Double(p.packets_per_sec));
    entry.Set("speedup_vs_1worker", Json::Double(base > 0 ? p.packets_per_sec / base : 0.0));
    arr.Push(std::move(entry));
  }
  section.Set("points", std::move(arr));
  doc.Set("fabric_scaling", std::move(section));
  std::ofstream(path) << doc.Dump(2) << "\n";
}

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_core.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: perf_fabric [--smoke] [--out PATH]\n");
      return 2;
    }
  }

  const uint64_t bytes_per_pair = smoke ? 200'000 : 16'000'000;
  std::printf("\n=== perf_fabric ===\n32-host Clos, 16 bulk pairs of %llu bytes, "
              "%u hardware thread(s), budget %zu\n\n",
              static_cast<unsigned long long>(bytes_per_pair),
              std::thread::hardware_concurrency(), ThreadBudget::Total());
  std::printf("%8s %8s %12s %14s %10s %10s %8s\n", "workers", "granted", "wall(s)",
              "pkts/sec", "packets", "events", "speedup");

  std::vector<FabricPoint> points;
  int failures = 0;
  const int reps = smoke ? 1 : 3;
  for (size_t workers : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    FabricPoint p = RunFabric(workers, bytes_per_pair);
    for (int rep = 1; rep < reps; ++rep) {
      const FabricPoint again = RunFabric(workers, bytes_per_pair);
      if (again.packets_per_sec > p.packets_per_sec) {
        p = again;
      }
    }
    if (!points.empty()) {
      const FabricPoint& base = points.front();
      if (p.packets != base.packets || p.delivered_bytes != base.delivered_bytes ||
          p.windows != base.windows || p.events != base.events) {
        std::fprintf(stderr,
                     "DETERMINISM FAIL at %zu workers: packets %llu vs %llu, bytes %llu "
                     "vs %llu, windows %llu vs %llu, events %llu vs %llu\n",
                     workers, static_cast<unsigned long long>(p.packets),
                     static_cast<unsigned long long>(base.packets),
                     static_cast<unsigned long long>(p.delivered_bytes),
                     static_cast<unsigned long long>(base.delivered_bytes),
                     static_cast<unsigned long long>(p.windows),
                     static_cast<unsigned long long>(base.windows),
                     static_cast<unsigned long long>(p.events),
                     static_cast<unsigned long long>(base.events));
        ++failures;
      }
    }
    std::printf("%8zu %8zu %12.3f %14.0f %10llu %10llu %7.1fx\n", p.requested, p.workers,
                p.wall_s, p.packets_per_sec, static_cast<unsigned long long>(p.packets),
                static_cast<unsigned long long>(p.events),
                points.empty() ? 1.0 : p.packets_per_sec / points.front().packets_per_sec);
    points.push_back(p);
  }

  WriteFabricSection(points, out_path);
  std::printf("\nupdated %s (fabric_scaling)\n", out_path.c_str());
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace juggler

int main(int argc, char** argv) { return juggler::Main(argc, argv); }
