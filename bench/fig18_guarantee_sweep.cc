// Figure 18: achieved vs guaranteed bandwidth.
//
// Sweep the target flow's guarantee B from 5 to 30Gb/s against 7
// antagonists. Expected: with Juggler the achieved bandwidth tracks B
// closely until the single-core receive-path limit (~25Gb/s); the vanilla
// stack falls well short and is highly variable. The target flow never
// drops below its ~5Gb/s fair share even for tiny guarantees (all-low
// -priority packets still get the fair share).

#include "bench/guarantee_common.h"
#include "src/sim/sweep_runner.h"

namespace juggler {
namespace {

struct SweepResult {
  double mean_gbps = 0;
  double std_gbps = 0;
};

SweepResult RunPoint(bool use_juggler, int64_t guarantee_bps, int trials) {
  PercentileSampler achieved;
  for (int trial = 0; trial < trials; ++trial) {
    auto rig = BuildGuaranteeRig(use_juggler, 100 + static_cast<uint64_t>(trial));
    rig->world.loop.RunUntil(Ms(20));
    StartController(rig.get(), guarantee_bps, 200 + static_cast<uint64_t>(trial));
    // Let the control loop and the cwnd ramp converge, then measure 150ms.
    rig->world.loop.RunUntil(Ms(250));
    GoodputMeter meter(rig->target.b_to_a);
    meter.Reset();
    rig->world.loop.RunUntil(Ms(400));
    achieved.Add(meter.Gbps(Ms(150)));
  }
  return SweepResult{achieved.Mean(), achieved.StdDev()};
}

}  // namespace
}  // namespace juggler

int main() {
  using namespace juggler;
  PrintHeader("Figure 18",
              "Achieved vs guaranteed bandwidth (mean +- std over trials).\n"
              "Expected: Juggler tracks the guarantee up to the ~25Gb/s single-core\n"
              "limit; vanilla falls short and varies; neither drops below the\n"
              "~5Gb/s fair share.");
  const int trials = 5;
  TablePrinter table({"guarantee(Gb/s)", "juggler mean(Gb/s)", "juggler std", "vanilla mean(Gb/s)",
                      "vanilla std"});
  // 6 guarantees x {juggler, vanilla}: 12 independent points on the sweep
  // runner. Each RunPoint builds its own rig per trial, so results match the
  // old sequential loop exactly.
  constexpr size_t kGuarantees = 6;
  const std::vector<SweepResult> points = RunSweep(kGuarantees * 2, [trials](size_t i) {
    const int64_t b = 5 + static_cast<int64_t>(i / 2) * 5;
    const bool use_juggler = (i % 2) == 0;
    return RunPoint(use_juggler, b * kGbps, trials);
  });
  for (size_t g = 0; g < kGuarantees; ++g) {
    const int64_t b = 5 + static_cast<int64_t>(g) * 5;
    const SweepResult& j = points[g * 2];
    const SweepResult& v = points[g * 2 + 1];
    table.AddRow({TablePrinter::Num(static_cast<double>(b), 0), TablePrinter::Num(j.mean_gbps, 2),
                  TablePrinter::Num(j.std_gbps, 2), TablePrinter::Num(v.mean_gbps, 2),
                  TablePrinter::Num(v.std_gbps, 2)});
  }
  table.Print();
  return 0;
}
