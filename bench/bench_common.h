// Shared helpers for the figure-reproduction benches. Each bench binary
// reproduces one table/figure from the paper and prints the series as an
// aligned table (see EXPERIMENTS.md for the paper-vs-measured record).

#ifndef JUGGLER_BENCH_BENCH_COMMON_H_
#define JUGGLER_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>

#include "src/qos/priority_controller.h"
#include "src/scenario/gro_factories.h"
#include "src/scenario/sampler.h"
#include "src/scenario/topologies.h"
#include "src/stats/stats.h"
#include "src/stats/table_printer.h"
#include "src/workload/message_stream.h"
#include "src/workload/rpc_generator.h"

namespace juggler {

inline void PrintHeader(const char* figure, const char* description) {
  std::printf("\n=== %s ===\n%s\n\n", figure, description);
}

// Goodput of an endpoint pair measured at the receiver over [t1, t2].
class GoodputMeter {
 public:
  explicit GoodputMeter(const TcpEndpoint* receiver) : receiver_(receiver) {}

  void Reset() { start_bytes_ = receiver_->bytes_delivered(); }

  double Gbps(TimeNs window) const {
    return ToGbps(
        RateBps(static_cast<int64_t>(receiver_->bytes_delivered() - start_bytes_), window));
  }

 private:
  const TcpEndpoint* receiver_;
  uint64_t start_bytes_ = 0;
};

// The paper's default host: 125us interrupt moderation, standard GRO unless
// overridden, default TCP.
inline HostConfig DefaultHost() {
  HostConfig hc;
  hc.rx.int_coalesce = Us(125);
  hc.gro_factory = MakeStandardGroFactory();
  return hc;
}

// Juggler tuned per §5.2.1 for a given line rate and expected reordering:
// inseq_timeout = time to receive one 64KB TSO at line rate; ofo_timeout =
// max expected path-delay difference minus the coalescing period.
inline JugglerConfig TunedJuggler(int64_t line_rate_bps, TimeNs expected_reorder,
                                  TimeNs int_coalesce = Us(125)) {
  JugglerConfig config;
  config.inseq_timeout = SerializationTime(kMaxTsoPayload, line_rate_bps);
  // §5.2.1: "it is better to slightly over-estimate ofo_timeout since packet
  // loss is rare in datacenters". Under continuous line-rate load NAPI stays
  // in polling mode, so interrupt coalescing absorbs less than a full tau0 of
  // the reordering; tune with headroom above tau rather than shaving tau0.
  (void)int_coalesce;
  const TimeNs ofo = expected_reorder + Us(50);
  config.ofo_timeout = ofo > Us(50) ? ofo : Us(50);
  return config;
}

}  // namespace juggler

#endif  // JUGGLER_BENCH_BENCH_COMMON_H_
