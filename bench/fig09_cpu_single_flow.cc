// Figure 9: CPU overhead, single-flow case. See cpu_overhead_common.h.

#include "bench/cpu_overhead_common.h"

int main() {
  juggler::RunCpuOverheadFigure("Figure 9", 1);
  return 0;
}
