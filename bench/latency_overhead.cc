// §5.1.2: latency overhead of Juggler on short RPCs.
//
// One client sends 150-byte RPC messages to a server with no competing
// traffic. Since Juggler treats in-order traffic exactly like standard GRO
// (150B messages carry PSH and flush immediately), the median latency must
// match the vanilla stack's.

#include "bench/bench_common.h"

namespace juggler {
namespace {

PercentileSampler RunOnce(bool use_juggler) {
  SimWorld world;
  NetFpgaOptions opt;
  opt.link_rate_bps = 10 * kGbps;
  opt.reorder_delay = 0;  // both lanes equal
  opt.sender = DefaultHost();
  opt.receiver = DefaultHost();
  if (use_juggler) {
    opt.receiver.gro_factory = MakeJugglerFactory();
  }
  NetFpgaTestbed t = BuildNetFpga(&world, opt);
  EndpointPair pair = ConnectHosts(t.sender, t.receiver, 1000, 2000);
  PercentileSampler latency_us;
  MessageStream stream(&world.loop, pair.a_to_b, pair.b_to_a, &latency_us);
  RpcGeneratorConfig gcfg;
  gcfg.message_bytes = 150;
  gcfg.messages_per_sec = 2000;
  gcfg.stop_time = Ms(200);
  gcfg.seed = 5;
  OpenLoopRpcGenerator gen(&world.loop, gcfg, {&stream});
  gen.Start();
  world.loop.RunUntil(Ms(250));
  return latency_us;
}

}  // namespace
}  // namespace juggler

int main() {
  using namespace juggler;
  PrintHeader("§5.1.2 latency overhead",
              "150B RPC latency with no competing traffic and no reordering.\n"
              "Expected: identical medians with and without Juggler.");
  PercentileSampler vanilla = RunOnce(false);
  PercentileSampler jug = RunOnce(true);
  TablePrinter table({"stack", "median(us)", "p99(us)", "samples"});
  table.AddRow({"vanilla", TablePrinter::Num(vanilla.Percentile(50), 1),
                TablePrinter::Num(vanilla.Percentile(99), 1), std::to_string(vanilla.count())});
  table.AddRow({"juggler", TablePrinter::Num(jug.Percentile(50), 1),
                TablePrinter::Num(jug.Percentile(99), 1), std::to_string(jug.count())});
  table.Print();
  return 0;
}
