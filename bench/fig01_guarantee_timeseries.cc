// Figure 1: bandwidth guarantee via dynamic packet scheduling, time series.
//
// 8 flows share a 40Gb/s interconnect (~5Gb/s each at fair share). At t=0
// the Eq. (1) controller starts dynamically prioritizing one flow's packets
// to give it a 20Gb/s guarantee. With Juggler the flow converges to ~20Gb/s
// and stays there; with the vanilla stack the priority-induced reordering
// causes wildly variable, below-guarantee throughput.
//
// (Time axis scaled from the paper's +-2s to -40ms..+160ms of simulated
// time; the control loop settles within tens of milliseconds.)

#include "bench/guarantee_common.h"

namespace juggler {
namespace {

void RunTimeseries(bool use_juggler) {
  auto rig = BuildGuaranteeRig(use_juggler, 7);
  const TimeNs t0 = Ms(40);          // controller start ("time 0" in Fig. 1)
  const TimeNs horizon = Ms(200);    // 160ms after t0
  const TimeNs bin = Ms(5);

  TimeSeries series(0, bin, static_cast<size_t>(horizon / bin));
  const TcpEndpoint* rx = rig->target.b_to_a;
  uint64_t last_bytes = 0;
  PeriodicTask sampler(&rig->world.loop, Ms(1), horizon, [&] {
    const uint64_t bytes = rx->bytes_delivered();
    series.Add(rig->world.loop.now() - 1, static_cast<double>(bytes - last_bytes));
    last_bytes = bytes;
  });

  rig->world.loop.RunUntil(t0);
  StartController(rig.get(), 20 * kGbps, 11);
  rig->world.loop.RunUntil(horizon);

  TablePrinter table({"time(ms)", "target flow throughput(Gb/s)"});
  for (size_t i = 0; i < series.bins(); ++i) {
    const double ms = ToMs(series.bin_start(i) - t0);
    table.AddRow({TablePrinter::Num(ms, 0), TablePrinter::Num(series.bin_rate(i) * 8.0 / 1e9, 2)});
  }
  table.Print();
  std::printf("final controller p = %.3f\n\n",
              rig->controller ? rig->controller->p() : 0.0);
}

}  // namespace
}  // namespace juggler

int main() {
  using namespace juggler;
  PrintHeader("Figure 1",
              "Bandwidth guarantee by dynamic packet prioritization: 8 flows on a\n"
              "40Gb/s link, one flow given a 20Gb/s guarantee at t=0. Expected:\n"
              "~5Gb/s fair share before t=0 in both stacks; after t=0 Juggler\n"
              "converges to ~20Gb/s, vanilla stays low and variable.");
  std::printf("-- JUGGLER kernel --\n");
  RunTimeseries(/*use_juggler=*/true);
  std::printf("-- vanilla kernel --\n");
  RunTimeseries(/*use_juggler=*/false);
  return 0;
}
