// Figure 12: batching efficiency vs inseq_timeout.
//
// Setup (paper §5.2.1, Figure 11 testbed): one TCP flow at 10Gb/s line rate
// through the NetFPGA switch with 250/500/750us of reordering. Sweep
// Juggler's inseq_timeout 0..100us; report the batching extent (average
// MTUs per segment handed to TCP) and receive-path CPU usage.
//
// Expected shape: batching starts around ~25 MTUs at timeout 0 (merging
// within single polling cycles only), rises to the 45-MTU maximum by about
// 52us — the time to receive one 64KB TSO at 10Gb/s — and gains nothing
// beyond that, at every reordering level. CPU usage falls as batching grows.

#include "bench/bench_common.h"

namespace juggler {
namespace {

struct Result {
  double batching = 0;
  double rx_core = 0;
  double app_core = 0;
  double gbps = 0;
};

Result RunOnce(TimeNs reorder, TimeNs inseq_timeout) {
  SimWorld world;
  NetFpgaOptions opt;
  opt.link_rate_bps = 10 * kGbps;
  opt.reorder_delay = reorder;
  opt.sender = DefaultHost();
  opt.receiver = DefaultHost();
  JugglerConfig jcfg = TunedJuggler(10 * kGbps, reorder);
  jcfg.inseq_timeout = inseq_timeout;
  opt.receiver.gro_factory = MakeJugglerFactory(jcfg);
  NetFpgaTestbed t = BuildNetFpga(&world, opt);

  EndpointPair pair = ConnectHosts(t.sender, t.receiver, 1000, 2000);
  pair.a_to_b->SendForever();

  const TimeNs warmup = Ms(30);
  const TimeNs window = Ms(100);
  world.loop.RunUntil(warmup);

  const GroStats before = t.receiver->nic_rx()->TotalGroStats();
  CpuUsageMeter rx_meter(t.receiver->nic_rx()->rx_core(0));
  CpuUsageMeter app_meter(t.receiver->app_core());
  rx_meter.Reset(world.loop.now());
  app_meter.Reset(world.loop.now());
  GoodputMeter goodput(pair.b_to_a);
  goodput.Reset();

  world.loop.RunUntil(warmup + window);

  const GroStats after = t.receiver->nic_rx()->TotalGroStats();
  Result r;
  const uint64_t segs = after.data_segments_out - before.data_segments_out;
  const uint64_t mtus = after.mtus_out - before.mtus_out;
  r.batching = segs == 0 ? 0.0 : static_cast<double>(mtus) / static_cast<double>(segs);
  r.rx_core = rx_meter.Utilization(world.loop.now()) * 100.0;
  r.app_core = app_meter.Utilization(world.loop.now()) * 100.0;
  r.gbps = goodput.Gbps(window);
  return r;
}

}  // namespace
}  // namespace juggler

int main() {
  using namespace juggler;
  PrintHeader("Figure 12",
              "Batching extent and CPU usage vs inseq_timeout (10Gb/s line rate,\n"
              "single flow, NetFPGA reordering of 250/500/750us). Knee expected at\n"
              "~52us = one 64KB TSO at 10Gb/s; reordering level should not move it.");

  const TimeNs reorders[] = {Us(250), Us(500), Us(750)};
  const TimeNs timeouts[] = {0,      Us(10), Us(20), Us(30), Us(40),
                             Us(52), Us(70), Us(100)};
  for (TimeNs reorder : reorders) {
    std::printf("-- %ldus reordering --\n", static_cast<long>(reorder / kNsPerUs));
    TablePrinter table({"inseq_timeout(us)", "batching(MTUs/seg)", "rx_core(%)", "app_core(%)",
                        "throughput(Gb/s)"});
    for (TimeNs timeout : timeouts) {
      const Result r = RunOnce(reorder, timeout);
      table.AddRow({TablePrinter::Num(ToUs(timeout), 0), TablePrinter::Num(r.batching, 1),
                    TablePrinter::Num(r.rx_core, 1), TablePrinter::Num(r.app_core, 1),
                    TablePrinter::Num(r.gbps, 2)});
    }
    table.Print();
    std::printf("\n");
  }
  return 0;
}
