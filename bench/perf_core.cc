// perf_core: hot-path microbenchmarks for the simulation core, with a
// tracked baseline.
//
// Unlike the fig* benches (which measure the *simulated* system) and
// micro_gro_datapath (google-benchmark exploration), perf_core is the repo's
// perf trajectory: it measures the two rates every experiment is bottlenecked
// by — EventLoop events/sec and GRO-datapath packets/sec — and writes
// BENCH_core.json containing both the current numbers and the recorded
// pre-overhaul baseline from bench/perf_baseline.h, so any regression (or
// win) is visible in one file.
//
// Modes:
//   perf_core [--smoke] [--out PATH]   run the suite, merge into BENCH_core.json
//                                      (other benches' sections are preserved)
//   perf_core --baseline-header PATH --commit SHA
//                                      same run, also re-record perf_baseline.h;
//                                      the JSON then references the new numbers
//   perf_core --print-baseline-header  emit a fresh perf_baseline.h to stdout
//   perf_core --check PATH             schema-check an existing BENCH_core.json

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/perf_baseline.h"
#include "src/core/juggler.h"
#include "src/nic/rx_driver.h"
#include "src/obs/flight_recorder.h"
#include "src/packet/packet.h"
#include "src/sim/event_loop.h"
#include "src/util/json.h"
#include "src/util/time.h"

namespace juggler {
namespace {

double Seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

// ---------------------------------------------------------------- events --

// Self-rescheduling event chains, the pattern links/NICs/TCP use. Captures
// are sized like real call sites (a couple of pointers plus flags), which is
// past std::function's inline buffer but inside TimerCallback's.
struct Chain {
  EventLoop* loop = nullptr;
  uint64_t remaining = 0;
  uint64_t fired = 0;
  uint64_t pad0 = 0, pad1 = 0;  // mimic per-callsite state captured by value

  void Arm() {
    loop->Schedule(1, [this, a = pad0, b = pad1] {
      pad0 = a + b;
      ++fired;
      if (--remaining > 0) {
        Arm();
      }
    });
  }
};

double MeasureEventsPerSec(uint64_t total_events) {
  EventLoop loop;
  constexpr uint64_t kChains = 8;
  std::vector<Chain> chains(kChains);
  // Untimed warm-up: first-touching the wheel arrays, callback slab, and
  // malloc arenas is a fixed cost (~ms) that would otherwise dominate
  // smoke-sized runs and read as a throughput regression.
  for (auto& c : chains) {
    c.loop = &loop;
    c.remaining = total_events / kChains / 16 + 1;
  }
  for (auto& c : chains) {
    c.Arm();
  }
  loop.Run();
  for (auto& c : chains) {
    c.fired = 0;
    c.remaining = total_events / kChains;
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (auto& c : chains) {
    c.Arm();
  }
  loop.Run();
  const double secs = Seconds(std::chrono::steady_clock::now() - t0);
  uint64_t fired = 0;
  for (const auto& c : chains) {
    fired += c.fired;
  }
  return static_cast<double>(fired) / secs;
}

// TCP-RTO-style churn: arm a far-future timer, cancel it on the next "ACK".
// Schedule+cancel dominates; the loop must keep its bookkeeping cheap and its
// heap compact while almost nothing ever fires.
double MeasureTimerChurnOpsPerSec(uint64_t total_ops) {
  EventLoop loop;
  uint64_t fires = 0;
  uint64_t sink = 0;
  // Untimed warm-up, same rationale as the events bench: first-touch of the
  // wheel slots and the callback freelist is a fixed cost the steady-state
  // rate should not carry.
  for (uint64_t i = 0; i < total_ops / 16 + 1; ++i) {
    loop.Cancel(loop.Schedule(Ms(200), [&fires] { ++fires; }));
  }
  loop.Run();
  const auto t0 = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < total_ops; ++i) {
    const TimerId id =
        loop.Schedule(Ms(200), [&fires, &sink, i] { fires += 1 + (sink & 0) + (i & 0); });
    loop.Cancel(id);
    if ((i & 1023) == 0) {
      // Keep a trickle of real fires mixed in so the heap never goes fully
      // dead (matches ACK-clocked RTO re-arming).
      loop.Schedule(0, [&fires] { ++fires; });
      loop.RunSteps(1);
    }
  }
  loop.Run();
  const double secs = Seconds(std::chrono::steady_clock::now() - t0);
  return static_cast<double>(total_ops) / secs;
}

// ------------------------------------------------------------- datapath --

// Single-flow in-order GRO datapath, the Fig. 9 fast path: one PacketFactory
// packet per MTU, NAPI-budget polls through Juggler, segments delivered
// through the engine's GroHost. This is the per-packet cost every simulated
// byte pays.

// Bench-local host: collects segments, records the armed timer deadline.
struct BenchGroHost : GroHost {
  std::vector<Segment> delivered;
  TimeNs armed = GroEngine::kNoTimer;

  void GroDeliver(Segment s) override { delivered.push_back(std::move(s)); }
  void GroArmTimer(TimeNs when) override { armed = when; }
};

// `recorder` null measures the shipped configuration (the flight-recorder
// branches compile in but never fire); non-null measures the fully
// instrumented path, ring writes included.
double MeasureGroDatapathPacketsPerSec(uint64_t total_packets,
                                       FlightRecorder* recorder = nullptr) {
  CpuCostModel costs;
  Juggler engine(&costs, JugglerConfig{});

  TimeNs now = 0;
  BenchGroHost host;
  GroEngine::Context ctx;
  ctx.now = &now;
  ctx.host = &host;
  ctx.recorder = recorder;
  engine.set_context(ctx);

  PacketFactory factory;
  FiveTuple flow;
  flow.src_ip = 0x0a000001;
  flow.dst_ip = 0x0a000002;
  flow.src_port = 1000;
  flow.dst_port = 2000;

  constexpr uint64_t kBudget = 64;  // NAPI budget per poll round
  std::vector<PacketPtr> batch;
  batch.reserve(kBudget);
  Seq seq = 0;
  uint64_t done = 0;
  const auto t0 = std::chrono::steady_clock::now();
  while (done < total_packets) {
    batch.clear();
    for (uint64_t j = 0; j < kBudget; ++j) {
      PacketPtr p = factory.Make();
      p->flow = flow;
      p->seq = seq;
      p->payload_len = kMss;
      p->flags = kFlagAck;
      p->nic_rx_time = now;
      batch.push_back(std::move(p));
      seq += kMss;
    }
    // One batch per poll round, as NicRx::DoPoll hands them off.
    engine.ReceiveBatch(batch.data(), batch.size());
    done += kBudget;
    engine.PollComplete();
    now += Us(5);
    if (host.armed != GroEngine::kNoTimer && host.armed <= now) {
      host.armed = GroEngine::kNoTimer;
      engine.OnTimer();
    }
    host.delivered.clear();
  }
  const double secs = Seconds(std::chrono::steady_clock::now() - t0);
  return static_cast<double>(done) / secs;
}

// ------------------------------------------------------------ rx drivers --

// Full receive-driver datapath on a live EventLoop: wire -> ring ->
// poll/claim machinery -> batched GRO -> segment sink. Unlike the NIC-less
// gro_datapath bench above, this pays each driver's own bookkeeping (NAPI
// sessions for RSS; claim/commit windows and the in-order hand-off for
// COREC), which is exactly the per-packet overhead the corec gate bounds.
struct CountingSink : SegmentSink {
  uint64_t bytes = 0;
  void OnSegment(Segment s) override { bytes += s.payload_len; }
};

double MeasureRxDriverPacketsPerSec(RxDriverKind kind, uint64_t total_packets) {
  EventLoop loop;
  CpuCostModel costs;
  CountingSink sink;
  NicRxConfig cfg;
  cfg.driver = kind;
  std::unique_ptr<RxDriver> nic = MakeRxDriver(
      &loop, &costs, cfg,
      [](const CpuCostModel* c) -> std::unique_ptr<GroEngine> {
        return std::make_unique<Juggler>(c, JugglerConfig{});
      },
      &sink);

  PacketFactory factory;
  FiveTuple flow;
  flow.src_ip = 0x0a000001;
  flow.dst_ip = 0x0a000002;
  flow.src_port = 1000;
  flow.dst_port = 2000;

  constexpr uint64_t kBurst = 64;
  Seq seq = 0;
  auto burst = [&] {
    for (uint64_t j = 0; j < kBurst; ++j) {
      PacketPtr p = factory.Make();
      p->flow = flow;
      p->seq = seq;
      p->payload_len = kMss;
      p->flags = kFlagAck;
      nic->Accept(std::move(p));
      seq += kMss;
    }
    loop.Run();
  };
  // Untimed warm-up (first-touch of rings, cores, GRO tables).
  for (uint64_t done = 0; done < total_packets / 16 + kBurst; done += kBurst) {
    burst();
  }
  uint64_t done = 0;
  const auto t0 = std::chrono::steady_clock::now();
  while (done < total_packets) {
    burst();
    done += kBurst;
  }
  const double secs = Seconds(std::chrono::steady_clock::now() - t0);
  return static_cast<double>(done) / secs;
}

// ----------------------------------------------------------------- suite --

struct Results {
  double events_per_sec = 0;
  double churn_ops_per_sec = 0;
  double packets_per_sec = 0;
  double obs_on_packets_per_sec = 0;  // same datapath, flight recorder attached
  double rss_driver_packets_per_sec = 0;    // full NicRx (RSS+NAPI) datapath
  double corec_driver_packets_per_sec = 0;  // full CorecRx datapath
};

Results RunSuite(bool smoke) {
  const uint64_t events = smoke ? 200'000 : 4'000'000;
  // Churn ops are ~10ns each: 200k would be a 2ms window where one scheduler
  // preemption halves the reading. 1M keeps smoke under 15ms and stable.
  const uint64_t churn = smoke ? 1'000'000 : 4'000'000;
  const uint64_t packets = smoke ? 128'000 : 2'048'000;
  const int reps = smoke ? 1 : 3;

  Results best;
  for (int r = 0; r < reps; ++r) {
    Results cur;
    cur.events_per_sec = MeasureEventsPerSec(events);
    cur.churn_ops_per_sec = MeasureTimerChurnOpsPerSec(churn);
    cur.packets_per_sec = MeasureGroDatapathPacketsPerSec(packets);
    {
      FlightRecorder recorder(/*shard=*/0);
      cur.obs_on_packets_per_sec = MeasureGroDatapathPacketsPerSec(packets, &recorder);
    }
    const uint64_t driver_packets = packets / 4;  // full drivers are ~4x costlier
    cur.rss_driver_packets_per_sec =
        MeasureRxDriverPacketsPerSec(RxDriverKind::kRss, driver_packets);
    cur.corec_driver_packets_per_sec =
        MeasureRxDriverPacketsPerSec(RxDriverKind::kCorec, driver_packets);
    best.events_per_sec = std::max(best.events_per_sec, cur.events_per_sec);
    best.churn_ops_per_sec = std::max(best.churn_ops_per_sec, cur.churn_ops_per_sec);
    best.packets_per_sec = std::max(best.packets_per_sec, cur.packets_per_sec);
    best.obs_on_packets_per_sec =
        std::max(best.obs_on_packets_per_sec, cur.obs_on_packets_per_sec);
    best.rss_driver_packets_per_sec =
        std::max(best.rss_driver_packets_per_sec, cur.rss_driver_packets_per_sec);
    best.corec_driver_packets_per_sec =
        std::max(best.corec_driver_packets_per_sec, cur.corec_driver_packets_per_sec);
  }
  return best;
}

double Ratio(double cur, double base) { return base > 0 ? cur / base : 0.0; }

// The perf ctest gate: every metric must hold at least `tolerance` of its
// recorded baseline. Failures name the metric with current, baseline and the
// tolerance line it crossed, so a CI log is actionable without rerunning.
int GateAgainstBaseline(const Results& r, double tolerance) {
  struct Metric {
    const char* name;
    double current;
    double baseline;
    double heap_era;
  };
  const Metric metrics[] = {
      {"event_loop events/sec", r.events_per_sec, perf_baseline::kEventLoopEventsPerSec,
       perf_baseline::kHeapEraEventLoopEventsPerSec},
      {"timer_churn ops/sec", r.churn_ops_per_sec, perf_baseline::kTimerChurnOpsPerSec,
       perf_baseline::kHeapEraTimerChurnOpsPerSec},
      {"gro_datapath packets/sec", r.packets_per_sec,
       perf_baseline::kGroDatapathPacketsPerSec,
       perf_baseline::kHeapEraGroDatapathPacketsPerSec},
  };
  int failures = 0;
  for (const Metric& m : metrics) {
    const double ratio = Ratio(m.current, m.baseline);
    if (ratio < tolerance) {
      // Both reference eras, so a failure log shows whether the regression
      // merely gives back the overhaul or falls below the original seed.
      std::fprintf(stderr,
                   "PERF GATE FAIL: %s = %.0f is %.1fx of baseline %.0f "
                   "(tolerance %.1fx of commit %s)\n"
                   "                wheel-era reference: %.0f @ %s\n"
                   "                heap-era reference:  %.0f @ %s (%.1fx of that)\n",
                   m.name, m.current, ratio, m.baseline, tolerance, perf_baseline::kCommit,
                   m.baseline, perf_baseline::kCommit, m.heap_era,
                   perf_baseline::kHeapEraCommit, Ratio(m.current, m.heap_era));
      ++failures;
    }
  }
  if (failures == 0) {
    std::printf("perf gate: all metrics >= %.1fx of baseline %s\n", tolerance,
                perf_baseline::kCommit);
  }
  return failures;
}

// The observability gate: with instrumentation compiled in but DISABLED (no
// recorder attached — the shipped configuration), the GRO datapath must hold
// at least `tolerance` of the pre-observability baseline. The default of
// 0.98 is the "obs off costs <= 2%" acceptance bar; CI smoke runs use a
// looser ratio because shared runners are noisy. The obs-ON rate is printed
// for the record but never gated — paying for data when you ask for it is
// the deal.
int GateObsOverhead(const Results& r, double tolerance) {
  const double ratio = Ratio(r.packets_per_sec, perf_baseline::kGroDatapathPacketsPerSec);
  std::printf("obs gate: gro_datapath obs-off %.0f pkts/sec (%.2fx of baseline %.0f),"
              " obs-on %.0f (%.2fx of obs-off)\n",
              r.packets_per_sec, ratio, perf_baseline::kGroDatapathPacketsPerSec,
              r.obs_on_packets_per_sec,
              Ratio(r.obs_on_packets_per_sec, r.packets_per_sec));
  if (ratio < tolerance) {
    std::fprintf(stderr,
                 "OBS GATE FAIL: obs-disabled gro_datapath = %.0f is %.2fx of baseline "
                 "%.0f (tolerance %.2fx of commit %s) — instrumentation is not free\n",
                 r.packets_per_sec, ratio, perf_baseline::kGroDatapathPacketsPerSec,
                 tolerance, perf_baseline::kCommit);
    return 1;
  }
  std::printf("obs gate: obs-disabled datapath >= %.2fx of baseline %s\n", tolerance,
              perf_baseline::kCommit);
  return 0;
}

// The COREC acceptance gate: the concurrent single-queue driver's per-packet
// wall cost (measured through the full driver datapath) must stay within
// `max_ratio` of RSS+NAPI's — the claim/commit and hand-off bookkeeping is
// allowed to cost something, but not to change the simulator's complexity
// class. Cost ratio = rss_rate / corec_rate (rates invert costs).
int GateCorecOverhead(const Results& r, double max_ratio) {
  const double cost_ratio = r.corec_driver_packets_per_sec > 0
                                ? r.rss_driver_packets_per_sec / r.corec_driver_packets_per_sec
                                : 0.0;
  std::printf("corec gate: rx_driver datapath rss %.0f pkts/sec, corec %.0f pkts/sec "
              "(corec per-packet cost %.2fx of rss)\n",
              r.rss_driver_packets_per_sec, r.corec_driver_packets_per_sec, cost_ratio);
  if (cost_ratio <= 0.0 || cost_ratio > max_ratio) {
    std::fprintf(stderr,
                 "COREC GATE FAIL: corec per-packet cost is %.2fx of rss "
                 "(tolerance %.2fx) — the claim/commit path got expensive\n",
                 cost_ratio, max_ratio);
    return 1;
  }
  std::printf("corec gate: corec datapath within %.2fx of rss\n", max_ratio);
  return 0;
}

// The reference the current numbers are compared against in the output
// file. Normally the compiled-in perf_baseline constants; when this run IS
// a recording pass (--baseline-header), the fresh numbers themselves, so
// the written JSON and the written header agree without a rebuild.
struct BaselineView {
  std::string commit = perf_baseline::kCommit;
  double events_per_sec = perf_baseline::kEventLoopEventsPerSec;
  double churn_ops_per_sec = perf_baseline::kTimerChurnOpsPerSec;
  double packets_per_sec = perf_baseline::kGroDatapathPacketsPerSec;
};

// Merge-preserving writer: sections other benches own (perf_fabric's
// "fabric_scaling", perf_scale's "flow_scale" / "tcp_scale") survive a
// perf_core rerun, so one recording pass over the three benches — in any
// order — leaves a complete file.
void WriteJson(const Results& r, const BaselineView& base, const std::string& path) {
  Json doc = Json::Object();
  {
    std::ifstream in(path);
    if (in) {
      std::stringstream ss;
      ss << in.rdbuf();
      std::string error;
      if (!Json::Parse(ss.str(), &doc, &error)) {
        std::fprintf(stderr, "perf_core: %s unparseable (%s), rewriting\n", path.c_str(),
                     error.c_str());
        doc = Json::Object();
      }
    }
  }
  doc.Set("bench", Json::Str("perf_core"));
  Json baseline = Json::Object();
  baseline.Set("commit", Json::Str(base.commit));
  baseline.Set("event_loop_events_per_sec", Json::Double(base.events_per_sec));
  baseline.Set("timer_churn_ops_per_sec", Json::Double(base.churn_ops_per_sec));
  baseline.Set("gro_datapath_packets_per_sec", Json::Double(base.packets_per_sec));
  doc.Set("baseline", std::move(baseline));
  Json current = Json::Object();
  current.Set("event_loop_events_per_sec", Json::Double(r.events_per_sec));
  current.Set("timer_churn_ops_per_sec", Json::Double(r.churn_ops_per_sec));
  current.Set("gro_datapath_packets_per_sec", Json::Double(r.packets_per_sec));
  current.Set("gro_datapath_obs_on_packets_per_sec", Json::Double(r.obs_on_packets_per_sec));
  current.Set("rx_driver_rss_packets_per_sec", Json::Double(r.rss_driver_packets_per_sec));
  current.Set("rx_driver_corec_packets_per_sec",
              Json::Double(r.corec_driver_packets_per_sec));
  doc.Set("current", std::move(current));
  Json speedup = Json::Object();
  speedup.Set("event_loop", Json::Double(Ratio(r.events_per_sec, base.events_per_sec)));
  speedup.Set("timer_churn", Json::Double(Ratio(r.churn_ops_per_sec, base.churn_ops_per_sec)));
  speedup.Set("gro_datapath", Json::Double(Ratio(r.packets_per_sec, base.packets_per_sec)));
  doc.Set("speedup", std::move(speedup));
  std::ofstream out(path);
  out << doc.Dump(2) << "\n";
}

// Emits a fresh bench/perf_baseline.h recording `r` as the new reference.
// The heap-era and fabric constants are carried forward verbatim so a
// regeneration never loses the historical reference or perf_fabric's gate
// number.
void EmitBaselineHeader(FILE* out, const Results& r, const char* commit) {
  std::fprintf(
      out,
      "// Recorded hot-path baseline for bench/perf_core. Regenerate with\n"
      "//   cmake --build build --target bench-record\n"
      "// (or perf_core --baseline-header bench/perf_baseline.h --commit <sha>)\n"
      "// and note the commit it was measured at.\n"
      "\n"
      "#ifndef JUGGLER_BENCH_PERF_BASELINE_H_\n"
      "#define JUGGLER_BENCH_PERF_BASELINE_H_\n"
      "\n"
      "namespace juggler::perf_baseline {\n"
      "\n"
      "inline constexpr char kCommit[] = \"%s\";\n"
      "inline constexpr double kEventLoopEventsPerSec = %.1f;\n"
      "inline constexpr double kTimerChurnOpsPerSec = %.1f;\n"
      "inline constexpr double kGroDatapathPacketsPerSec = %.1f;\n"
      "\n"
      "// Heap-era reference (binary-heap timers, per-packet dispatch,\n"
      "// per-MTU heap allocation), measured at commit %s.\n"
      "inline constexpr char kHeapEraCommit[] = \"%s\";\n"
      "inline constexpr double kHeapEraEventLoopEventsPerSec = %.1f;\n"
      "inline constexpr double kHeapEraTimerChurnOpsPerSec = %.1f;\n"
      "inline constexpr double kHeapEraGroDatapathPacketsPerSec = %.1f;\n"
      "\n"
      "// bench/perf_fabric reference: 32-host Clos bulk transfer at ONE\n"
      "// worker on the sharded engine.\n"
      "inline constexpr double kFabricClosPacketsPerSec = %.1f;\n"
      "\n"
      "}  // namespace juggler::perf_baseline\n"
      "\n"
      "#endif  // JUGGLER_BENCH_PERF_BASELINE_H_\n",
      commit, r.events_per_sec, r.churn_ops_per_sec, r.packets_per_sec,
      perf_baseline::kHeapEraCommit, perf_baseline::kHeapEraCommit,
      perf_baseline::kHeapEraEventLoopEventsPerSec,
      perf_baseline::kHeapEraTimerChurnOpsPerSec,
      perf_baseline::kHeapEraGroDatapathPacketsPerSec,
      perf_baseline::kFabricClosPacketsPerSec);
}

// Minimal schema check: the file parses as one JSON object (brace balance)
// and contains every metric key the perf trajectory tracks.
int CheckSchema(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "perf_core --check: cannot open %s\n", path.c_str());
    return 1;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  int depth = 0;
  int max_depth = 0;
  for (char c : text) {
    if (c == '{') {
      max_depth = std::max(max_depth, ++depth);
    } else if (c == '}') {
      if (--depth < 0) {
        std::fprintf(stderr, "perf_core --check: unbalanced braces in %s\n", path.c_str());
        return 1;
      }
    }
  }
  if (depth != 0 || max_depth < 2) {
    std::fprintf(stderr, "perf_core --check: %s is not a nested JSON object\n", path.c_str());
    return 1;
  }
  const char* required[] = {
      "\"bench\"",         "\"baseline\"",
      "\"current\"",       "\"speedup\"",
      "\"commit\"",        "\"event_loop_events_per_sec\"",
      "\"timer_churn_ops_per_sec\"", "\"gro_datapath_packets_per_sec\"",
      "\"gro_datapath_obs_on_packets_per_sec\"",
      "\"rx_driver_rss_packets_per_sec\"",
      "\"rx_driver_corec_packets_per_sec\"",
      "\"event_loop\"",    "\"timer_churn\"",
      "\"gro_datapath\"",
  };
  int failures = 0;
  for (const char* key : required) {
    if (text.find(key) == std::string::npos) {
      std::fprintf(stderr, "perf_core --check: missing key %s\n", key);
      ++failures;
    }
  }
  if (failures == 0) {
    std::printf("perf_core --check: %s ok\n", path.c_str());
  }
  return failures == 0 ? 0 : 1;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  bool print_header = false;
  double gate_tolerance = 0.0;      // 0 = no gate
  double obs_gate_tolerance = 0.0;  // 0 = no obs gate; 0.98 = the 2% bar
  double corec_gate_ratio = 0.0;    // 0 = no corec gate; 1.3 = the acceptance bar
  std::string out_path = "BENCH_core.json";
  std::string header_path;          // non-empty: this run records the baseline
  std::string commit_label = "unrecorded";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--print-baseline-header") == 0) {
      print_header = true;
    } else if (std::strcmp(argv[i], "--baseline-header") == 0 && i + 1 < argc) {
      header_path = argv[++i];
    } else if (std::strcmp(argv[i], "--commit") == 0 && i + 1 < argc) {
      commit_label = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--gate") == 0 && i + 1 < argc) {
      gate_tolerance = std::strtod(argv[++i], nullptr);
      if (gate_tolerance <= 0.0) {
        std::fprintf(stderr, "--gate needs a tolerance ratio > 0 (e.g. 0.5)\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--obs-gate") == 0 && i + 1 < argc) {
      obs_gate_tolerance = std::strtod(argv[++i], nullptr);
      if (obs_gate_tolerance <= 0.0) {
        std::fprintf(stderr, "--obs-gate needs a tolerance ratio > 0 (e.g. 0.98)\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--corec-gate") == 0 && i + 1 < argc) {
      corec_gate_ratio = std::strtod(argv[++i], nullptr);
      if (corec_gate_ratio <= 0.0) {
        std::fprintf(stderr, "--corec-gate needs a max cost ratio > 0 (e.g. 1.3)\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      return CheckSchema(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: perf_core [--smoke] [--out PATH] [--gate RATIO] "
                   "[--obs-gate RATIO] [--corec-gate RATIO] [--print-baseline-header]\n"
                   "                 [--baseline-header PATH] [--commit LABEL] "
                   "[--check PATH]\n");
      return 2;
    }
  }

  const Results r = RunSuite(smoke);

  if (print_header) {
    EmitBaselineHeader(stdout, r, "FILL_ME");
    return 0;
  }
  if (!header_path.empty()) {
    FILE* f = std::fopen(header_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "perf_core: cannot write %s\n", header_path.c_str());
      return 1;
    }
    EmitBaselineHeader(f, r, commit_label.c_str());
    std::fclose(f);
    std::printf("recorded baseline header %s @ %s\n", header_path.c_str(),
                commit_label.c_str());
  }

  std::printf("\n=== perf_core ===\n%s\n\n",
              smoke ? "(smoke sizes)" : "(full sizes, best of 3)");
  std::printf("%-32s %16s %16s %10s\n", "metric", "baseline", "current", "speedup");
  std::printf("%-32s %16.0f %16.0f %9.1fx\n", "event_loop events/sec",
              perf_baseline::kEventLoopEventsPerSec, r.events_per_sec,
              Ratio(r.events_per_sec, perf_baseline::kEventLoopEventsPerSec));
  std::printf("%-32s %16.0f %16.0f %9.1fx\n", "timer_churn ops/sec",
              perf_baseline::kTimerChurnOpsPerSec, r.churn_ops_per_sec,
              Ratio(r.churn_ops_per_sec, perf_baseline::kTimerChurnOpsPerSec));
  std::printf("%-32s %16.0f %16.0f %9.1fx\n", "gro_datapath packets/sec",
              perf_baseline::kGroDatapathPacketsPerSec, r.packets_per_sec,
              Ratio(r.packets_per_sec, perf_baseline::kGroDatapathPacketsPerSec));
  std::printf("%-32s %16s %16.0f %9.2fx\n", "gro_datapath obs-on pkts/sec", "(vs obs-off)",
              r.obs_on_packets_per_sec,
              Ratio(r.obs_on_packets_per_sec, r.packets_per_sec));
  std::printf("%-32s %16s %16.0f %9s\n", "rx_driver rss pkts/sec", "-",
              r.rss_driver_packets_per_sec, "-");
  std::printf("%-32s %16s %16.0f %8.2fx\n", "rx_driver corec pkts/sec", "(cost vs rss)",
              r.corec_driver_packets_per_sec,
              Ratio(r.rss_driver_packets_per_sec, r.corec_driver_packets_per_sec));
  BaselineView base;
  if (!header_path.empty()) {
    // Recording pass: the JSON's reference is the header just written, so
    // the two artifacts agree (speedups read 1.0 by definition at record
    // time) without rebuilding against the new constants first.
    base.commit = commit_label;
    base.events_per_sec = r.events_per_sec;
    base.churn_ops_per_sec = r.churn_ops_per_sec;
    base.packets_per_sec = r.packets_per_sec;
  }
  WriteJson(r, base, out_path);
  std::printf("\nwrote %s\n", out_path.c_str());
  int failures = 0;
  if (gate_tolerance > 0.0) {
    failures += GateAgainstBaseline(r, gate_tolerance);
  }
  if (obs_gate_tolerance > 0.0) {
    failures += GateObsOverhead(r, obs_gate_tolerance);
  }
  if (corec_gate_ratio > 0.0) {
    failures += GateCorecOverhead(r, corec_gate_ratio);
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace juggler

int main(int argc, char** argv) { return juggler::Main(argc, argv); }
