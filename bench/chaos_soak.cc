// Chaos soak: the fault-injection layer's acceptance run.
//
// 20 seeds x 5 fault families (drop bursts, duplication, corruption, delay
// spikes, link flaps), each run driving the same bulk transfer through
// Juggler (with full structural invariant auditing) and through standard
// GRO, differentially. Reports per-family liveness (completed transfers),
// invariant violations, stream agreement, and fault-event volume, then
// re-runs one (family, seed) pair per family to demonstrate the determinism
// contract: same seed + timeline => bit-identical digest.
//
// The (family, seed) runs are independent, so they execute on the parallel
// sweep runner; results are aggregated and printed in sequential order, and
// each run is a pure function of its options, so the output (digests
// included) is byte-identical to the old sequential loop.

#include "bench/bench_common.h"
#include "src/scenario/chaos_scenario.h"
#include "src/sim/sweep_runner.h"

namespace juggler {
namespace {

constexpr int kSeeds = 20;

const FaultFamily kFamilies[] = {
    FaultFamily::kDropBurst, FaultFamily::kDuplicate, FaultFamily::kCorrupt,
    FaultFamily::kDelaySpike, FaultFamily::kLinkFlap,
};
constexpr size_t kNumFamilies = sizeof(kFamilies) / sizeof(kFamilies[0]);

int Run() {
  PrintHeader("chaos soak",
              "20 seeds x 5 fault families, Juggler (audited) vs standard GRO,\n"
              "invariants: exactly-once in-order delivery, gro_table structure,\n"
              "byte conservation, stream agreement between engines");

  std::printf("%-12s %10s %10s %12s %12s %12s\n", "family", "runs", "completed",
              "violations", "mismatches", "fault_events");

  // One point per (family, seed); family-major so aggregation below walks the
  // results in exactly the order the sequential loops produced them.
  const std::vector<ChaosResult> results =
      RunSweep(kNumFamilies * kSeeds, [](size_t i) {
        ChaosOptions opt;
        opt.family = kFamilies[i / kSeeds];
        opt.seed = 1 + static_cast<uint64_t>(i % kSeeds);
        return RunChaos(opt);
      });

  int failures = 0;
  for (size_t f = 0; f < kNumFamilies; ++f) {
    const FaultFamily family = kFamilies[f];
    int completed = 0;
    uint64_t violations = 0;
    int mismatches = 0;
    uint64_t fault_events = 0;
    for (int s = 0; s < kSeeds; ++s) {
      const ChaosResult& r = results[f * kSeeds + static_cast<size_t>(s)];
      if (r.juggler.completed && r.baseline.completed) {
        ++completed;
      }
      violations += r.juggler.violations + r.baseline.violations;
      if (!r.streams_match) {
        ++mismatches;
      }
      fault_events += r.juggler.faults.drops + r.juggler.faults.duplicates +
                      r.juggler.faults.corruptions + r.juggler.faults.truncations +
                      r.juggler.faults.delayed + r.juggler.flaps;
      if (!r.ok) {
        ++failures;
        std::printf("  FAIL %s seed=%llu\n", FaultFamilyName(family),
                    static_cast<unsigned long long>(1 + s));
        for (const auto& res : {r.juggler, r.baseline}) {
          for (const auto& m : res.violation_messages) {
            std::printf("    %s: %s\n", res.engine.c_str(), m.c_str());
          }
        }
      }
    }
    std::printf("%-12s %10d %10d %12llu %12d %12llu\n", FaultFamilyName(family), kSeeds,
                completed, static_cast<unsigned long long>(violations), mismatches,
                static_cast<unsigned long long>(fault_events));
  }

  std::printf("\ndeterminism: same (family, seed) twice, digests must match\n");
  std::printf("%-12s %18s %18s  %s\n", "family", "digest_run1", "digest_run2", "match");
  // Each determinism point runs its pair back-to-back on one worker; the pair
  // must share nothing but the options, which is exactly the contract.
  struct DeterminismPair {
    ChaosResult r1;
    ChaosResult r2;
  };
  const std::vector<DeterminismPair> pairs = RunSweep(kNumFamilies, [](size_t f) {
    ChaosOptions opt;
    opt.seed = 7;
    opt.family = kFamilies[f];
    DeterminismPair pair;
    pair.r1 = RunChaos(opt);
    pair.r2 = RunChaos(opt);
    return pair;
  });
  for (size_t f = 0; f < kNumFamilies; ++f) {
    const DeterminismPair& pair = pairs[f];
    const bool match = pair.r1.juggler.digest == pair.r2.juggler.digest &&
                       pair.r1.baseline.digest == pair.r2.baseline.digest;
    if (!match) {
      ++failures;
    }
    std::printf("%-12s %018llx %018llx  %s\n", FaultFamilyName(kFamilies[f]),
                static_cast<unsigned long long>(pair.r1.juggler.digest),
                static_cast<unsigned long long>(pair.r2.juggler.digest),
                match ? "yes" : "NO");
  }

  std::printf("\n%s\n", failures == 0 ? "PASS" : "FAIL");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace juggler

int main() { return juggler::Run(); }
