// Fuzz soak: the forensics layer's long-running acceptance run.
//
// Drives the full fuzz supervisor — randomized ScenarioSpecs, watchdogged
// child execution, signature classification, delta-debug shrinking — for a
// wall-clock budget (default 60s) and reports throughput plus any findings.
// A healthy tree produces zero findings; any finding prints its shrunk spec
// and (with --out) leaves a replayable bundle behind.
//
//   ./build/bench/fuzz_soak                 # 60s budget, seed 1
//   ./build/bench/fuzz_soak --budget-ms 300000 --seed 9 --out repro/

#include <cstdlib>
#include <cstring>

#include "bench/bench_common.h"
#include "src/forensics/fuzz_supervisor.h"

namespace juggler {
namespace {

int Run(int argc, char** argv) {
  FuzzOptions opt;
  opt.num_specs = 1'000'000;  // budget-bound, not count-bound
  opt.time_budget_ms = 60'000;
  opt.verbose = false;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--budget-ms") == 0) {
      opt.time_budget_ms = std::atoll(next("--budget-ms"));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      opt.seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--out") == 0) {
      opt.out_dir = next("--out");
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      opt.verbose = true;
    } else {
      std::fprintf(stderr, "usage: %s [--budget-ms B] [--seed S] [--out DIR] [--verbose]\n",
                   argv[0]);
      return 2;
    }
  }

  PrintHeader("fuzz soak",
              "randomized chaos scenarios in watchdogged children, failures\n"
              "classified into signatures, shrunk, and bundled for replay");
  std::printf("budget %lldms, seed %llu\n\n", (long long)opt.time_budget_ms,
              static_cast<unsigned long long>(opt.seed));

  const FuzzReport report = RunFuzz(opt);

  std::printf("%d specs run, %d failing, %zu distinct finding(s)\n", report.specs_run,
              report.failures, report.findings.size());
  const double per_spec = report.specs_run > 0
                              ? static_cast<double>(opt.time_budget_ms) / report.specs_run
                              : 0.0;
  std::printf("~%.0fms per spec (fork + differential run + classification)\n", per_spec);
  for (const FuzzFinding& f : report.findings) {
    std::printf("  [%016llx] %s: %s (spec #%d, shrunk to %zu timeline events)\n",
                static_cast<unsigned long long>(f.signature.fingerprint),
                SignatureKindName(f.signature.kind), f.signature.detail.c_str(), f.spec_index,
                f.shrunk.TimelineEvents());
  }
  std::printf("\n%s\n", report.findings.empty() ? "PASS" : "FAIL");
  return report.findings.empty() ? 0 : 1;
}

}  // namespace
}  // namespace juggler

int main(int argc, char** argv) { return juggler::Run(argc, argv); }
