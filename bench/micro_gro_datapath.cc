// Datapath microbenchmarks (google-benchmark): wall-clock cost of the GRO
// engines themselves — packets/sec through Receive(), OOO-queue insertion,
// flow-table eviction churn. These measure the *implementation*, unlike the
// fig* benches which measure the simulated system.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "src/core/juggler.h"
#include "src/gro/baseline_gro.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace juggler {
namespace {

std::vector<Seq> MakeOrder(uint32_t n, uint32_t window, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<double, uint32_t>> keyed;
  for (uint32_t i = 0; i < n; ++i) {
    keyed.emplace_back(i + (window ? rng.NextDouble() * window : 0.0), i);
  }
  std::stable_sort(keyed.begin(), keyed.end());
  std::vector<Seq> order;
  for (auto& [k, i] : keyed) {
    order.push_back(i * kMss);
  }
  return order;
}

template <typename MakeEngine>
void RunPackets(benchmark::State& state, MakeEngine make, uint32_t window) {
  GroHarness h(make);
  const std::vector<Seq> order = MakeOrder(1024, window, 42);
  const FiveTuple flow = TestFlow();
  uint64_t packets = 0;
  Seq epoch = 0;
  for (auto _ : state) {
    for (Seq s : order) {
      h.Receive(MakeDataPacket(flow, epoch + s, kMss));
    }
    h.Advance(Us(100));
    h.PollComplete();
    h.MaybeFireTimer();
    h.TakeDelivered();
    packets += order.size();
    epoch += 1024 * kMss;  // keep sequences advancing across iterations
  }
  state.SetItemsProcessed(static_cast<int64_t>(packets));
}

void BM_StandardGroInOrder(benchmark::State& state) {
  RunPackets(
      state, [](const CpuCostModel* c) { return std::make_unique<StandardGro>(c); }, 0);
}
BENCHMARK(BM_StandardGroInOrder);

void BM_JugglerInOrder(benchmark::State& state) {
  RunPackets(
      state,
      [](const CpuCostModel* c) { return std::make_unique<Juggler>(c, JugglerConfig{}); }, 0);
}
BENCHMARK(BM_JugglerInOrder);

void BM_JugglerReordered(benchmark::State& state) {
  const uint32_t window = static_cast<uint32_t>(state.range(0));
  RunPackets(
      state,
      [](const CpuCostModel* c) { return std::make_unique<Juggler>(c, JugglerConfig{}); },
      window);
}
BENCHMARK(BM_JugglerReordered)->Arg(4)->Arg(16)->Arg(64);

void BM_JugglerFlowChurn(benchmark::State& state) {
  // Many flows against a small table: lookup + eviction on nearly every
  // packet.
  JugglerConfig config;
  config.max_flows = 16;
  GroHarness h(
      [config](const CpuCostModel* c) { return std::make_unique<Juggler>(c, config); });
  uint64_t packets = 0;
  Seq seq = 0;
  for (auto _ : state) {
    for (uint16_t f = 0; f < 256; ++f) {
      h.Receive(MakeDataPacket(TestFlow(f, 1), seq, kMss));
    }
    h.Advance(Us(50));
    h.PollComplete();
    h.MaybeFireTimer();
    h.TakeDelivered();
    packets += 256;
    seq += kMss;
  }
  state.SetItemsProcessed(static_cast<int64_t>(packets));
}
BENCHMARK(BM_JugglerFlowChurn);

void BM_JugglerAckPassthrough(benchmark::State& state) {
  GroHarness h(
      [](const CpuCostModel* c) { return std::make_unique<Juggler>(c, JugglerConfig{}); });
  uint64_t packets = 0;
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) {
      h.Receive(MakeAckPacket(TestFlow(), static_cast<Seq>(i) * kMss));
    }
    h.TakeDelivered();
    packets += 1024;
  }
  state.SetItemsProcessed(static_cast<int64_t>(packets));
}
BENCHMARK(BM_JugglerAckPassthrough);

}  // namespace
}  // namespace juggler

BENCHMARK_MAIN();
